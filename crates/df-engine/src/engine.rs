//! The MODIN-like scalable engine.
//!
//! This is the paper's §3 system rebuilt in Rust: pandas-semantics dataframe queries
//! executed over a partitioned representation with task-parallel per-partition work,
//! a metadata-only TRANSPOSE, deferred schema induction and a logical-rewrite pass in
//! front of execution. The engine keeps intermediate results partitioned between
//! operators *and between statements*: `execute` returns a [`GridResult`] behind a
//! [`FrameHandle`], later plans resume from it through [`AlgebraExpr::Handle`]
//! leaves, and a full [`DataFrame`] only exists at the explicit materialisation
//! points (`collect` / `execute_collect` / `head_of` / `tail_of`).
//!
//! Operator strategies (paper §3.1 "different internal mechanisms for exploiting
//! parallelism depending on the data dimensions and operations"):
//!
//! * *Embarrassingly parallel row-wise operators* (SELECTION, arity-preserving MAP,
//!   PROJECTION, RENAME, LIMIT) run independently on each row band.
//! * *GROUPBY* runs as partial aggregation per row band followed by a merge of the
//!   partial states — the map/combine structure that gives the paper's groupby
//!   speedups. Aggregates whose partial states cannot be merged (e.g. Std) fall back
//!   to single-pass execution over the assembled frame.
//! * *TRANSPOSE* is metadata-only: the partition grid swaps its axes and each block
//!   flips an orientation flag (paper §3.1), deferring any physical block transposes
//!   to the operators that actually read the data.
//! * *JOIN, SORT, DROP_DUPLICATES and DIFFERENCE* run partition-parallel through the
//!   [`crate::shuffle`] subsystem: hash (or sampled range) exchanges co-locate keys,
//!   the per-bucket kernels run in parallel, and the ordered semantics are restored
//!   from position tags. Small join/difference build sides are broadcast instead of
//!   shuffled.
//! * The remaining operators (WINDOW, CROSS_PRODUCT, TOLABELS, FROMLABELS) assemble
//!   their input and reuse the reference semantics; the engine counts those
//!   assemblies in [`ModinEngine::fallbacks_dispatched`] so tests and the README's
//!   execution-strategy table stay honest.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use df_storage::csv::CsvOptions;
use df_storage::spill::{SpillStats, SpillStore};
use df_types::backend::BackendKind;
use df_types::cell::Cell;
use df_types::error::{DfError, DfResult};

use df_core::algebra::{AggFunc, Aggregation, AlgebraExpr, MapFunc, Predicate};
use df_core::cost;
use df_core::dataframe::DataFrame;
use df_core::engine::{Capabilities, Engine, EngineKind, PushdownSnapshot};
use df_core::handle::{FrameHandle, PartitionedResult};
use df_core::ops;
use df_core::scan::{ScanCsv, ScanOptions, ScanStats};

use crate::backend::{BackendHealth, BandTask, ExecBackend, ProcBackend, ThreadsBackend};
use crate::executor::{default_threads, ParallelExecutor};
use crate::ingest::{self, IngestStats};
use crate::optimizer::{optimize, OptimizerConfig, RewriteStats};
use crate::partition::{hstack_all, Partition, PartitionConfig, PartitionGrid, PartitionScheme};
use crate::shuffle;

/// Configuration of the scalable engine.
#[derive(Debug, Clone)]
pub struct ModinConfig {
    /// Worker threads for per-partition fan-out. Defaults to `DF_THREADS` when set,
    /// otherwise the machine's parallelism.
    pub threads: usize,
    /// Partition sizing.
    pub partitioning: PartitionConfig,
    /// Default partitioning scheme for literals.
    pub scheme: PartitionScheme,
    /// Logical rewrite rules to apply before execution.
    pub optimizer: OptimizerConfig,
    /// Defer schema induction: leave untyped (raw string) columns untyped until an
    /// operator actually needs their domains (paper §5.1.1). When false the engine
    /// eagerly parses literals like the baseline does — the ablation arm.
    pub defer_schema_induction: bool,
    /// JOIN / DIFFERENCE build sides with at most this many rows are broadcast to
    /// every partition instead of hash-shuffling both inputs. Set to 0 to force the
    /// shuffle path (differential tests do this).
    pub broadcast_threshold_rows: usize,
    /// Out-of-core memory budget (paper §3.3): when set, the engine creates a
    /// session-scoped [`SpillStore`] with this many bytes of in-memory budget and
    /// every operator keeps its partitions in the store — least-recently-used bands
    /// spill to disk instead of exhausting memory, and are freed when the engine
    /// drops. `None` (the default) keeps all partitions resident.
    pub memory_budget_bytes: Option<usize>,
    /// Where band tasks execute: the in-process thread pool
    /// ([`BackendKind::Threads`]) or a pool of spawned worker processes exchanging
    /// checksummed spill-v4 frames over pipes ([`BackendKind::Procs`]). Defaults to
    /// the `DF_BACKEND` environment variable, falling back to threads.
    pub backend: BackendKind,
}

impl Default for ModinConfig {
    fn default() -> Self {
        ModinConfig {
            threads: default_threads(),
            partitioning: PartitionConfig::default(),
            scheme: PartitionScheme::Row,
            optimizer: OptimizerConfig::default(),
            defer_schema_induction: true,
            broadcast_threshold_rows: 4096,
            memory_budget_bytes: None,
            backend: BackendKind::from_env(),
        }
    }
}

impl ModinConfig {
    /// A deterministic single-threaded configuration used by differential tests.
    pub fn sequential() -> Self {
        ModinConfig {
            threads: 1,
            ..ModinConfig::default()
        }
    }

    /// Small partitions, useful for exercising multi-partition paths on small test
    /// frames.
    pub fn with_partition_size(mut self, rows: usize, cols: usize) -> Self {
        self.partitioning = PartitionConfig {
            target_rows: rows,
            target_cols: cols,
        };
        self
    }

    /// Override the number of worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Override the default partitioning scheme.
    pub fn with_scheme(mut self, scheme: PartitionScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Override the broadcast threshold for JOIN / DIFFERENCE build sides.
    pub fn with_broadcast_threshold(mut self, rows: usize) -> Self {
        self.broadcast_threshold_rows = rows;
        self
    }

    /// Enable out-of-core execution with the given in-memory byte budget.
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget_bytes = Some(bytes);
        self
    }

    /// Select the executor backend explicitly (overriding `DF_BACKEND`).
    ///
    /// [`BackendKind::Threads`] runs band tasks on the in-process pool;
    /// [`BackendKind::Procs`] ships them to spawned `df-band-worker` processes
    /// over the spill-v4 pipe protocol. Results are identical either way.
    ///
    /// ```
    /// use df_engine::engine::{ModinConfig, ModinEngine};
    /// use df_types::backend::BackendKind;
    ///
    /// let engine = ModinEngine::try_with_config(
    ///     ModinConfig::default()
    ///         .with_threads(2)
    ///         .with_backend(BackendKind::Threads),
    /// )?;
    /// assert_eq!(engine.backend_kind(), BackendKind::Threads);
    /// # Ok::<(), df_types::error::DfError>(())
    /// ```
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }
}

/// The engine's partitioned query result behind a [`FrameHandle`]: an owned
/// [`PartitionGrid`] (resident or spilled) that assembles lazily. The scalable engine
/// recognises its own `GridResult`s inside [`AlgebraExpr::Handle`] plan leaves and
/// resumes from the grid without re-assembly or re-partitioning; other engines fall
/// back to [`PartitionedResult::assemble`].
#[derive(Debug)]
pub struct GridResult {
    grid: PartitionGrid,
}

impl GridResult {
    /// Wrap a partitioned result.
    pub fn new(grid: PartitionGrid) -> Self {
        GridResult { grid }
    }

    /// The partitioned representation this result owns.
    pub fn grid(&self) -> &PartitionGrid {
        &self.grid
    }
}

impl PartitionedResult for GridResult {
    fn shape(&self) -> (usize, usize) {
        self.grid.shape()
    }

    fn schema(&self) -> Option<df_core::handle::FrameSchema> {
        // Metadata only, like shape(): a fully spilled grid answers from the domains
        // its handles cached at check-in, with zero load-backs.
        self.grid.schema()
    }

    fn assemble(&self) -> DfResult<DataFrame> {
        self.grid.assemble()
    }

    fn prefix(&self, k: usize) -> DfResult<DataFrame> {
        // Partition-aware §6.1.2 inspection: only the leading bands are touched.
        self.grid.prefix(k)
    }

    fn suffix(&self, k: usize) -> DfResult<DataFrame> {
        self.grid.suffix(k)
    }

    fn approx_size_bytes(&self) -> Option<usize> {
        // Metadata only: stored blocks report the size cached at check-in, so a
        // fully spilled result is costed without a single load-back.
        Some(self.grid.approx_size_bytes())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// The scalable, partitioned, parallel dataframe engine.
pub struct ModinEngine {
    config: ModinConfig,
    executor: ParallelExecutor,
    /// The session-scoped spill store, present when the configuration sets a memory
    /// budget. Shared with the executor so every fan-out layer stores through it; its
    /// spill directory is removed when the engine (and all outstanding partition
    /// handles) drop — the paper's "freed once a session ends".
    store: Option<Arc<SpillStore>>,
    /// How many operators assembled their whole input and delegated to the reference
    /// semantics (the "fallback" strategy). Partition-parallel operators never touch
    /// this; tests assert on it to keep the dispatch table honest.
    fallbacks: AtomicU64,
    /// How many full-frame assemblies the engine performed at materialisation points
    /// (`collect` / `execute_collect`). Statements whose results only ever cross the
    /// waist as handles never touch this — the acceptance tests assert on it.
    assemblies: AtomicU64,
    /// How many [`AlgebraExpr::Handle`] leaves were resumed from their partitioned
    /// grid (no assembly, no re-partitioning).
    handle_reuses: AtomicU64,
    /// Files ingested through the parallel CSV path.
    ingest_files: AtomicU64,
    /// Bands parsed by ingest worker tasks.
    ingest_bands: AtomicU64,
    /// Bytes scanned by ingest plans.
    ingest_bytes: AtomicU64,
    /// Cost-based pushdown counters (chunks skipped, columns pruned, rewrites
    /// applied, join strategies taken), surfaced through [`Engine::pushdown_stats`].
    pushdown: PushdownCounters,
    /// Per-file scan statistics, cached by scan identity so repeated statements over
    /// the same file collect them once.
    scan_stats: Mutex<HashMap<String, Arc<ScanStats>>>,
}

/// The engine-side accumulators behind [`PushdownSnapshot`].
#[derive(Debug, Default)]
struct PushdownCounters {
    chunks_skipped: AtomicU64,
    columns_pruned: AtomicU64,
    predicates_pushed: AtomicU64,
    projections_pushed: AtomicU64,
    joins_broadcast: AtomicU64,
    joins_shuffled: AtomicU64,
}

impl ModinEngine {
    /// An engine with the default configuration.
    pub fn new() -> Self {
        ModinEngine::with_config(ModinConfig::default())
    }

    /// An engine with an explicit configuration.
    ///
    /// # Panics
    /// Panics if the session's spill directory cannot be created under the
    /// system temp dir, or if the process backend's worker binary cannot be
    /// resolved — use [`ModinEngine::try_with_config`] to handle those errors
    /// instead.
    pub fn with_config(config: ModinConfig) -> Self {
        match ModinEngine::try_with_config(config) {
            Ok(engine) => engine,
            Err(err) => panic!("cannot construct engine: {err}"),
        }
    }

    /// The fallible form of [`ModinEngine::with_config`]: creating an out-of-core
    /// engine touches the filesystem (the session's spill directory) and, for the
    /// process backend, resolves the worker binary; this constructor propagates
    /// those errors as typed [`DfError`]s instead of panicking.
    pub fn try_with_config(config: ModinConfig) -> DfResult<Self> {
        let store = match config.memory_budget_bytes {
            Some(budget) => Some(Arc::new(SpillStore::new(budget)?)),
            None => None,
        };
        let backend: Arc<dyn ExecBackend> = match config.backend {
            BackendKind::Threads => Arc::new(ThreadsBackend::new(config.threads)),
            BackendKind::Procs => Arc::new(ProcBackend::new(config.threads)?),
        };
        let executor = ParallelExecutor::new(config.threads)
            .with_store(store.clone())
            .with_backend(backend);
        Ok(ModinEngine {
            config,
            executor,
            store,
            fallbacks: AtomicU64::new(0),
            assemblies: AtomicU64::new(0),
            handle_reuses: AtomicU64::new(0),
            ingest_files: AtomicU64::new(0),
            ingest_bands: AtomicU64::new(0),
            ingest_bytes: AtomicU64::new(0),
            pushdown: PushdownCounters::default(),
            scan_stats: Mutex::new(HashMap::new()),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &ModinConfig {
        &self.config
    }

    /// The session's spill store, when a memory budget is configured.
    pub fn store(&self) -> Option<&Arc<SpillStore>> {
        self.store.as_ref()
    }

    /// Out-of-core statistics of the session's spill store (all zero when the engine
    /// runs without a memory budget). Reported next to
    /// [`ModinEngine::shuffles_dispatched`] by the benches and asserted by the spill
    /// equivalence suite.
    pub fn spill_stats(&self) -> SpillStats {
        self.store.as_ref().map(|s| s.stats()).unwrap_or_default()
    }

    /// Number of per-partition tasks the engine has dispatched so far.
    pub fn tasks_dispatched(&self) -> u64 {
        self.executor.tasks_run()
    }

    /// Which executor backend band tasks run on.
    pub fn backend_kind(&self) -> BackendKind {
        self.executor.backend().kind()
    }

    /// A snapshot of the backend's worker pool: workers spawned/live, restarts after
    /// worker loss, and how many band tasks ran remotely vs. inline. The threads
    /// backend reports everything as local; the equivalence suite asserts the procs
    /// backend actually ships work.
    pub fn backend_health(&self) -> BackendHealth {
        self.executor.backend().health()
    }

    /// Number of shuffles (hash/range exchanges) the engine has dispatched so far.
    pub fn shuffles_dispatched(&self) -> u64 {
        self.executor.shuffles_run()
    }

    /// Number of operators that fell back to assemble-and-delegate execution.
    pub fn fallbacks_dispatched(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// Number of full-frame assemblies performed at materialisation points
    /// ([`Engine::collect`] / [`Engine::execute_collect`]). Results that cross
    /// statement boundaries as handles do not assemble and do not count here.
    pub fn assemblies_dispatched(&self) -> u64 {
        self.assemblies.load(Ordering::Relaxed)
    }

    /// Number of [`AlgebraExpr::Handle`] plan leaves resumed directly from their
    /// partitioned grid — i.e. statement boundaries crossed without assembly or
    /// re-partitioning.
    pub fn handles_reused(&self) -> u64 {
        self.handle_reuses.load(Ordering::Relaxed)
    }

    fn note_fallback(&self) {
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    fn note_assembly(&self) {
        self.assemblies.fetch_add(1, Ordering::Relaxed);
    }

    /// Buckets for a shuffle: at least the worker count, and enough to keep several
    /// buckets per existing band on small test grids.
    fn bucket_count(&self, grid: &PartitionGrid) -> usize {
        self.executor
            .threads()
            .max(grid.n_row_bands().min(8))
            .max(1)
    }

    /// Shuffle tuning for one operator, derived from the engine configuration.
    fn shuffle_options(&self, grid: &PartitionGrid) -> shuffle::ShuffleOptions {
        shuffle::ShuffleOptions {
            buckets: self.bucket_count(grid),
            band_rows: self.config.partitioning.target_rows,
            broadcast_rows: self.config.broadcast_threshold_rows,
        }
    }

    /// Re-partition an assembled fallback result under the engine's configuration.
    fn repartition(&self, frame: &DataFrame) -> DfResult<PartitionGrid> {
        PartitionGrid::from_dataframe_in(
            frame,
            self.config.scheme,
            self.config.partitioning,
            self.store.as_ref(),
        )
    }

    /// Wrap a single assembled result, keeping it under the memory budget.
    fn single(&self, frame: DataFrame) -> DfResult<PartitionGrid> {
        PartitionGrid::single_in(frame, self.store.as_ref())
    }

    /// Run the optimizer alone (used by benches to report rewrite statistics).
    pub fn optimize_only(&self, expr: &AlgebraExpr) -> (AlgebraExpr, RewriteStats) {
        optimize(expr, self.config.optimizer)
    }

    /// Parallel, budget-aware CSV ingest straight into a result handle: chunks are
    /// parsed on the worker pool and each finished band is stored through the
    /// session's spill store, so ingesting a file larger than the memory budget
    /// keeps peak residency within *budget + one band per worker* — the full frame
    /// never exists in memory. The handle is cell-for-cell identical to serially
    /// reading the file (see [`crate::ingest`]).
    pub fn read_csv_handle(
        &self,
        path: impl AsRef<std::path::Path>,
        options: &CsvOptions,
    ) -> DfResult<FrameHandle> {
        Ok(FrameHandle::from_partitioned(Arc::new(GridResult::new(
            self.ingest_csv(path, options)?,
        ))))
    }

    /// The grid-level form of [`ModinEngine::read_csv_handle`], for callers that want
    /// to keep working with the partitioned representation directly.
    pub fn ingest_csv(
        &self,
        path: impl AsRef<std::path::Path>,
        options: &CsvOptions,
    ) -> DfResult<PartitionGrid> {
        let (grid, report) = ingest::ingest_csv_grid(
            &self.executor,
            self.store.as_ref(),
            self.config.partitioning,
            path.as_ref(),
            options,
        )?;
        self.ingest_files.fetch_add(1, Ordering::Relaxed);
        self.ingest_bands.fetch_add(report.bands, Ordering::Relaxed);
        self.ingest_bytes.fetch_add(report.bytes, Ordering::Relaxed);
        Ok(grid)
    }

    /// Cumulative parallel-ingest counters (`bands_parsed`, `ingest_bytes`), reported
    /// next to [`ModinEngine::spill_stats`] by the benches and the ingest suite.
    pub fn ingest_stats(&self) -> IngestStats {
        IngestStats {
            files_ingested: self.ingest_files.load(Ordering::Relaxed),
            bands_parsed: self.ingest_bands.load(Ordering::Relaxed),
            ingest_bytes: self.ingest_bytes.load(Ordering::Relaxed),
        }
    }

    /// Execute an expression and keep the result partitioned.
    pub fn execute_partitioned(&self, expr: &AlgebraExpr) -> DfResult<PartitionGrid> {
        let (optimized, stats) = optimize(expr, self.config.optimizer);
        self.note_rewrites(&stats);
        self.eval(&optimized)
    }

    fn note_rewrites(&self, stats: &RewriteStats) {
        self.pushdown
            .predicates_pushed
            .fetch_add(stats.predicates_pushed as u64, Ordering::Relaxed);
        self.pushdown
            .projections_pushed
            .fetch_add(stats.projections_pushed as u64, Ordering::Relaxed);
    }

    /// Evaluate a SCAN_CSV leaf: look up (or collect and cache) the file's chunk
    /// statistics, publish them onto the scan node so cost estimation and
    /// `explain()` can see them, then run the pushdown-aware parallel parse.
    fn eval_scan(&self, scan: &ScanCsv) -> DfResult<PartitionGrid> {
        let options = csv_options(scan.options);
        let stats = self.scan_stats_for(scan, &options)?;
        scan.set_stats(Arc::clone(&stats));
        let (grid, report) =
            ingest::scan_csv_grid(&self.executor, self.store.as_ref(), scan, &options, &stats)?;
        self.ingest_files.fetch_add(1, Ordering::Relaxed);
        self.ingest_bands.fetch_add(report.bands, Ordering::Relaxed);
        self.ingest_bytes.fetch_add(report.bytes, Ordering::Relaxed);
        self.pushdown
            .chunks_skipped
            .fetch_add(report.chunks_skipped, Ordering::Relaxed);
        self.pushdown
            .columns_pruned
            .fetch_add(report.columns_pruned, Ordering::Relaxed);
        Ok(grid)
    }

    /// The statistics for a scan's file, collected on first contact and cached by
    /// scan identity (projection and predicate do not affect the statistics, so
    /// every pushed variant of the same file shares one entry).
    fn scan_stats_for(&self, scan: &ScanCsv, options: &CsvOptions) -> DfResult<Arc<ScanStats>> {
        if let Some(cached) = self.scan_stats.lock().get(scan.identity()).cloned() {
            return Ok(cached);
        }
        let stats = Arc::new(ingest::collect_scan_stats(
            &self.executor,
            self.config.partitioning,
            self.config.memory_budget_bytes,
            &scan.path,
            options,
        )?);
        self.scan_stats
            .lock()
            .insert(scan.identity().to_string(), Arc::clone(&stats));
        Ok(stats)
    }

    /// Ensure every scan leaf under `expr` carries statistics, collecting (and
    /// caching) them when missing. A scan whose file cannot be read is left bare —
    /// `explain()` then renders it without estimates rather than failing.
    fn prime_scan_stats(&self, expr: &AlgebraExpr) {
        if let AlgebraExpr::ScanCsv(scan) = expr {
            if scan.stats().is_none() {
                let options = csv_options(scan.options);
                if let Ok(stats) = self.scan_stats_for(scan, &options) {
                    scan.set_stats(stats);
                }
            }
        }
        for child in expr.children() {
            self.prime_scan_stats(child);
        }
    }

    /// Statistics-driven broadcast sizing: the configured row threshold is really a
    /// proxy for a byte budget (`threshold × 16 bytes × build-side width`). When the
    /// build side's estimated per-row footprint is known, re-denominate the
    /// threshold for it — heavy rows lower the row allowance, light rows raise it
    /// (bounded to ¼–4× the configured threshold so estimates stay advisory).
    /// Without an estimate the configured row count stands, and a zero threshold
    /// always forces the shuffle path (differential tests rely on that).
    fn adaptive_broadcast_rows(&self, build: &AlgebraExpr, configured: usize) -> usize {
        if configured == 0 {
            return 0;
        }
        let Some(est) = cost::estimate(build) else {
            return configured;
        };
        if est.rows < 1.0 || est.bytes <= 0.0 {
            return configured;
        }
        let per_row = est.bytes / est.rows;
        let assumed = cost::DEFAULT_CELL_BYTES * est.cols.max(1.0);
        let adjusted = (configured as f64 * assumed / per_row) as usize;
        adjusted.clamp(configured / 4 + 1, configured.saturating_mul(4))
    }

    /// Render the logical and optimized plans with per-node cardinality/byte
    /// estimates, which rewrite rules fired, and the planned join strategies. Scans
    /// without cached statistics get a statistics pass first (cached, so the
    /// execution that typically follows pays nothing extra).
    pub fn explain_plan(&self, expr: &AlgebraExpr) -> String {
        self.prime_scan_stats(expr);
        let (optimized, stats) = optimize(expr, self.config.optimizer);
        let mut out = String::from("== logical plan ==\n");
        out.push_str(&cost::render_plan(expr));
        out.push_str("== optimized plan ==\n");
        out.push_str(&cost::render_plan(&optimized));
        out.push_str("== rewrites ==\n");
        let _ = writeln!(
            out,
            "predicates pushed into scans: {}\nprojections pushed into scans: {}\nselections fused: {}\ntranspose pairs eliminated: {}\nlimits pushed: {}",
            stats.predicates_pushed,
            stats.projections_pushed,
            stats.selections_fused,
            stats.transpose_pairs_eliminated,
            stats.limits_pushed,
        );
        let mut strategies = Vec::new();
        self.join_strategies(&optimized, &mut strategies);
        if !strategies.is_empty() {
            out.push_str("== join strategy ==\n");
            for line in strategies {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }

    /// One line per JOIN node: broadcast or shuffle, from the build side's estimated
    /// cardinality against the (statistics-adjusted) broadcast threshold.
    fn join_strategies(&self, expr: &AlgebraExpr, out: &mut Vec<String>) {
        if let AlgebraExpr::Join { right, .. } = expr {
            let threshold =
                self.adaptive_broadcast_rows(right, self.config.broadcast_threshold_rows);
            let line = match cost::estimate(right) {
                Some(est) if (est.rows.round() as usize) <= threshold => format!(
                    "JOIN: broadcast build side (~{} rows <= threshold {threshold})",
                    est.rows.round()
                ),
                Some(est) => format!(
                    "JOIN: hash-shuffle both sides (build ~{} rows > threshold {threshold})",
                    est.rows.round()
                ),
                None => format!(
                    "JOIN: hash-shuffle unless build side <= {threshold} rows (no statistics)"
                ),
            };
            out.push(line);
        }
        for child in expr.children() {
            self.join_strategies(child, out);
        }
    }

    fn partition_literal(&self, df: &Arc<DataFrame>) -> DfResult<PartitionGrid> {
        if self.config.defer_schema_induction {
            // Deferred induction touches nothing: partition the shared literal
            // directly instead of paying a defensive whole-frame clone first.
            return self.repartition(df);
        }
        let mut frame = df.as_ref().clone();
        frame.parse_all();
        self.repartition(&frame)
    }

    /// Resume a handle leaf: the engine's own grids are cloned by reference count —
    /// both stored and resident blocks are `Arc`-backed, so crossing a statement
    /// boundary is O(bands), with data copied only if a later consuming operator
    /// finds a block still shared (copy-on-write). Foreign handles are materialised
    /// and partitioned once.
    fn resume_handle(&self, handle: &FrameHandle) -> DfResult<PartitionGrid> {
        if let FrameHandle::Partitioned(result) = handle {
            if let Some(grid_result) = result.as_any().downcast_ref::<GridResult>() {
                self.handle_reuses.fetch_add(1, Ordering::Relaxed);
                return Ok(grid_result.grid().clone());
            }
        }
        self.repartition(&handle.to_dataframe()?)
    }

    fn eval(&self, expr: &AlgebraExpr) -> DfResult<PartitionGrid> {
        match expr {
            AlgebraExpr::Literal(df) => self.partition_literal(df),
            AlgebraExpr::Handle(handle) => self.resume_handle(handle),
            AlgebraExpr::ScanCsv(scan) => self.eval_scan(scan),
            AlgebraExpr::Transpose { input } => Ok(self.eval(input)?.transpose()),
            AlgebraExpr::Map { input, func } => self.eval_map(input, func),
            AlgebraExpr::Selection { input, predicate } => self.eval_selection(input, predicate),
            AlgebraExpr::Projection { input, columns } => {
                let grid = self.eval(input)?;
                self.band_task(grid, BandTask::Projection(columns.clone()))
            }
            AlgebraExpr::Rename { input, mapping } => {
                let grid = self.eval(input)?;
                self.band_task(grid, BandTask::Rename(mapping.clone()))
            }
            AlgebraExpr::Limit { input, k, from_end } => self.eval_limit(input, *k, *from_end),
            AlgebraExpr::GroupBy {
                input,
                keys,
                aggs,
                keys_as_labels,
            } => self.eval_group_by(input, keys, aggs, *keys_as_labels),
            AlgebraExpr::Union { left, right } => {
                // Ordered concatenation: keep both sides partitioned and stack their
                // band *handles* — no band is loaded, so a union of two
                // larger-than-memory grids stays larger than memory.
                let left = self.eval(left)?;
                let right = self.eval(right)?;
                let mut parts = left.into_band_partitions(self.store.as_ref())?;
                parts.extend(right.into_band_partitions(self.store.as_ref())?);
                Ok(PartitionGrid::from_band_partitions(parts))
            }
            AlgebraExpr::Sort { input, spec } => self.eval_sort(input, spec),
            AlgebraExpr::DropDuplicates { input } => self.eval_drop_duplicates(input),
            AlgebraExpr::Difference { left, right } => self.eval_difference(left, right),
            AlgebraExpr::Join {
                left,
                right,
                on,
                how,
            } => self.eval_join(left, right, on, *how),
            // Operators without a partitioned strategy: assemble and delegate to the
            // reference semantics, then re-partition the result.
            other => {
                self.note_fallback();
                let rewritten = self.assemble_children(other)?;
                let result = ops::execute_reference(&rewritten)?;
                self.repartition(&result)
            }
        }
    }

    /// Partition-parallel stable SORT via range shuffle. Unstable sorts delegate to
    /// the reference so tie order stays bit-for-bit identical to `sort_unstable`.
    fn eval_sort(
        &self,
        input: &AlgebraExpr,
        spec: &df_core::algebra::SortSpec,
    ) -> DfResult<PartitionGrid> {
        let grid = self.eval(input)?;
        if !spec.stable {
            self.note_fallback();
            let result = ops::group::sort(&grid.into_dataframe()?, spec)?;
            return self.repartition(&result);
        }
        let buckets = self.bucket_count(&grid);
        shuffle::parallel_sort(&self.executor, grid, spec, buckets)
    }

    /// Partition-parallel DROP_DUPLICATES via full-row hash shuffle.
    fn eval_drop_duplicates(&self, input: &AlgebraExpr) -> DfResult<PartitionGrid> {
        let grid = self.eval(input)?;
        if grid.shape().1 == 0 {
            self.note_fallback();
            let result = ops::group::drop_duplicates(&grid.into_dataframe()?)?;
            return self.repartition(&result);
        }
        let options = self.shuffle_options(&grid);
        shuffle::parallel_drop_duplicates(&self.executor, grid, options)
    }

    /// Partition-parallel DIFFERENCE via broadcast or full-row hash shuffle.
    fn eval_difference(&self, left: &AlgebraExpr, right: &AlgebraExpr) -> DfResult<PartitionGrid> {
        let left = self.eval(left)?;
        let right = self.eval(right)?;
        let (_, left_cols) = left.shape();
        let (_, right_cols) = right.shape();
        if left_cols == 0 || right_cols == 0 || left_cols != right_cols {
            // Degenerate arities (and their error cases) follow reference semantics.
            self.note_fallback();
            let result =
                ops::setops::difference(&left.into_dataframe()?, &right.into_dataframe()?)?;
            return self.repartition(&result);
        }
        let options = self.shuffle_options(&left);
        shuffle::parallel_difference(&self.executor, left, right, options)
    }

    /// Partition-parallel JOIN via broadcast or co-partitioning hash shuffle.
    fn eval_join(
        &self,
        left: &AlgebraExpr,
        right: &AlgebraExpr,
        on: &df_core::algebra::JoinOn,
        how: df_core::algebra::JoinType,
    ) -> DfResult<PartitionGrid> {
        let left_grid = self.eval(left)?;
        let right_grid = self.eval(right)?;
        if left_grid.shape().1 == 0 || right_grid.shape().1 == 0 {
            // Zero-column inputs cannot carry the position tags the shuffle needs;
            // these degenerate joins follow reference semantics directly.
            self.note_fallback();
            let result = ops::setops::join(
                &left_grid.into_dataframe()?,
                &right_grid.into_dataframe()?,
                on,
                how,
            )?;
            return self.repartition(&result);
        }
        let mut options = self.shuffle_options(&left_grid);
        // Statistics-driven strategy choice: re-denominate the broadcast threshold
        // for the build side's estimated row weight (scan leaves evaluated above
        // have populated their statistics, so the estimate sees them).
        options.broadcast_rows = self.adaptive_broadcast_rows(right, options.broadcast_rows);
        if right_grid.shape().0 <= options.broadcast_rows {
            self.pushdown
                .joins_broadcast
                .fetch_add(1, Ordering::Relaxed);
        } else {
            self.pushdown.joins_shuffled.fetch_add(1, Ordering::Relaxed);
        }
        shuffle::parallel_join(&self.executor, left_grid, right_grid, on, how, options)
    }

    /// Replace each child with a literal holding its assembled value.
    fn assemble_children(&self, expr: &AlgebraExpr) -> DfResult<AlgebraExpr> {
        let mut rewritten = expr.clone();
        match &mut rewritten {
            AlgebraExpr::Literal(_) | AlgebraExpr::Handle(_) | AlgebraExpr::ScanCsv(_) => {}
            AlgebraExpr::Selection { input, .. }
            | AlgebraExpr::Projection { input, .. }
            | AlgebraExpr::DropDuplicates { input }
            | AlgebraExpr::GroupBy { input, .. }
            | AlgebraExpr::Sort { input, .. }
            | AlgebraExpr::Rename { input, .. }
            | AlgebraExpr::Window { input, .. }
            | AlgebraExpr::Transpose { input }
            | AlgebraExpr::Map { input, .. }
            | AlgebraExpr::ToLabels { input, .. }
            | AlgebraExpr::FromLabels { input, .. }
            | AlgebraExpr::Limit { input, .. } => {
                let value = self.eval(input)?.into_dataframe()?;
                **input = AlgebraExpr::literal(value);
            }
            AlgebraExpr::Union { left, right }
            | AlgebraExpr::Difference { left, right }
            | AlgebraExpr::CrossProduct { left, right }
            | AlgebraExpr::Join { left, right, .. } => {
                let left_value = self.eval(left)?.into_dataframe()?;
                let right_value = self.eval(right)?.into_dataframe()?;
                **left = AlgebraExpr::literal(left_value);
                **right = AlgebraExpr::literal(right_value);
            }
        }
        Ok(rewritten)
    }

    /// Apply one [`BandTask`] per row band, in parallel across bands, under the
    /// out-of-core lifecycle: each worker loads one band, places the task on the
    /// configured backend (inline on threads, over the pipe protocol on worker
    /// processes), and checks the result into the session store (when a budget is
    /// set). Fan-out, cancellation and panic isolation still come from the
    /// executor's `par_map`; the backend only decides *where* each band runs.
    fn band_task(&self, grid: PartitionGrid, task: BandTask) -> DfResult<PartitionGrid> {
        grid.map_bands(&self.executor, self.store.as_ref(), move |_, band| {
            self.executor
                .run_task(&task, vec![band])?
                .pop()
                .ok_or_else(|| DfError::internal("band task returned no output band"))
        })
    }

    fn eval_map(&self, input: &AlgebraExpr, func: &MapFunc) -> DfResult<PartitionGrid> {
        let grid = self.eval(input)?;
        // Per-cell maps are orientation- and band-agnostic: run them on every block
        // without resolving deferred transposes or gathering whole rows. Each worker
        // loads its block, maps it, and stores the result.
        if per_cell_safe(func) {
            let store = self.store.clone();
            let task = BandTask::Map(func.clone());
            let blocks = grid.into_blocks();
            let flat: Vec<_> = blocks.into_iter().flatten().collect();
            let mapped = self.executor.par_map(flat, |_, part| {
                let block = part.load_stored()?;
                let result = self
                    .executor
                    .run_task(&task, vec![block])?
                    .pop()
                    .ok_or_else(|| DfError::internal("map task returned no output block"))?;
                let mapped_part =
                    Partition::new_in(result, part.row_offset, part.col_offset, store.as_ref())?;
                // A per-cell map commutes with transpose, so a block whose transpose
                // was deferred stays logically transposed; the flag rides along and
                // `rebuild_grid_like` resolves it.
                Ok((mapped_part, part.is_deferred_transpose()))
            })?;
            // Rebuild the grid structure: blocks were flattened row-band-major.
            return rebuild_grid_like(mapped, self.store.as_ref());
        }
        // Row-generic maps need whole rows: work per row band.
        self.band_task(grid, BandTask::Map(func.clone()))
    }

    fn eval_selection(
        &self,
        input: &AlgebraExpr,
        predicate: &Predicate,
    ) -> DfResult<PartitionGrid> {
        let grid = self.eval(input)?;
        if let Predicate::PositionRange { start, end } = predicate {
            // Positional selection: adjust the range per band using band offsets,
            // which come from grid metadata — no band is loaded outside its worker.
            let counts = grid.band_row_counts();
            let offsets: Vec<usize> = counts
                .iter()
                .scan(0usize, |acc, &len| {
                    let offset = *acc;
                    *acc += len;
                    Some(offset)
                })
                .collect();
            let (start, end) = (*start, *end);
            // This stays a driver-side closure: the per-band range depends on grid
            // metadata (band offsets), not on the band alone, so there is no
            // self-contained task to ship.
            return grid.map_bands(&self.executor, self.store.as_ref(), move |i, band| {
                let len = band.n_rows();
                let band_start = start.saturating_sub(offsets[i]).min(len);
                let band_end = end.saturating_sub(offsets[i]).min(len);
                Ok(band.slice_rows(band_start, band_end))
            });
        }
        self.band_task(grid, BandTask::Selection(predicate.clone()))
    }

    fn eval_limit(&self, input: &AlgebraExpr, k: usize, from_end: bool) -> DfResult<PartitionGrid> {
        let grid = self.eval(input)?;
        if from_end {
            // Suffix mirror of the prefix path: only trailing bands are materialised.
            return self.single(grid.suffix(k)?);
        }
        self.single(grid.prefix(k)?)
    }

    fn eval_group_by(
        &self,
        input: &AlgebraExpr,
        keys: &[Cell],
        aggs: &[Aggregation],
        keys_as_labels: bool,
    ) -> DfResult<PartitionGrid> {
        let grid = self.eval(input)?;
        if !aggs.iter().all(|a| mergeable(&a.func)) {
            // Fall back: single-pass over the assembled frame.
            self.note_fallback();
            let assembled = grid.into_dataframe()?;
            let result = ops::group::group_by(&assembled, keys, aggs, keys_as_labels)?;
            return self.single(result);
        }
        // Phase 1 (map): partial aggregation per row band, keys kept as data columns.
        // Bands are loaded inside their workers, so only the bands being aggregated
        // are resident; the partial states are group-sized, not band-sized. Each
        // band's partial aggregation is a self-contained task, so it is placed on
        // the configured backend.
        let partial_aggs: Vec<Aggregation> = aggs.iter().flat_map(partial_plan).collect();
        let task = BandTask::GroupPartial {
            keys: keys.to_vec(),
            aggs: partial_aggs,
        };
        let partials = grid.par_bands(&self.executor, |_, band| {
            self.executor
                .run_task(&task, vec![band])?
                .pop()
                .ok_or_else(|| DfError::internal("group task returned no partial state"))
        })?;
        // Phase 2 (reduce): concatenate partials and merge per key.
        let combined = ops::setops::union_all(partials)?;
        let merge_aggs: Vec<Aggregation> = aggs.iter().flat_map(merge_plans).collect();
        let mut result = ops::group::group_by(&combined, keys, &merge_aggs, keys_as_labels)?;
        // Post-process Mean (sum of sums / sum of counts) and restore output labels.
        result = finalize_merged(result, keys, aggs, keys_as_labels)?;
        self.single(result)
    }
}

impl Default for ModinEngine {
    fn default() -> Self {
        ModinEngine::new()
    }
}

impl Engine for ModinEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Modin
    }

    fn cancel_token(&self) -> Option<df_types::cancel::CancelToken> {
        Some(self.executor.cancel_token().clone())
    }

    fn execute(&self, expr: &AlgebraExpr) -> DfResult<FrameHandle> {
        // The result stays partitioned (resident or spilled, under the session's
        // memory budget); nothing is assembled until a materialisation point.
        Ok(FrameHandle::from_partitioned(Arc::new(GridResult::new(
            self.execute_partitioned(expr)?,
        ))))
    }

    fn collect(&self, handle: &FrameHandle) -> DfResult<DataFrame> {
        self.note_assembly();
        handle.to_dataframe()
    }

    fn execute_collect(&self, expr: &AlgebraExpr) -> DfResult<DataFrame> {
        // One-shot execution owns its grid, so assembly can consume the partitions
        // (moving blocks and draining their store entries) instead of copying them.
        self.note_assembly();
        self.execute_partitioned(expr)?.into_dataframe()
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            lazy_execution: true,
            ..Capabilities::full_dataframe()
        }
    }

    fn execute_prefix(&self, expr: &AlgebraExpr, k: usize) -> DfResult<DataFrame> {
        // Wrap in a LIMIT so the optimizer can push the prefix down through row-wise
        // operators (§6.1.2), then let the partition-aware prefix path finish the job.
        let limited = expr.clone().limit(k, false);
        let (optimized, stats) = optimize(&limited, self.config.optimizer);
        self.note_rewrites(&stats);
        self.eval(&optimized)?.into_dataframe()
    }

    fn execute_suffix(&self, expr: &AlgebraExpr, k: usize) -> DfResult<DataFrame> {
        let limited = expr.clone().limit(k, true);
        let (optimized, stats) = optimize(&limited, self.config.optimizer);
        self.note_rewrites(&stats);
        self.eval(&optimized)?.into_dataframe()
    }

    fn pushdown_stats(&self) -> PushdownSnapshot {
        PushdownSnapshot {
            chunks_skipped: self.pushdown.chunks_skipped.load(Ordering::Relaxed),
            columns_pruned: self.pushdown.columns_pruned.load(Ordering::Relaxed),
            predicates_pushed: self.pushdown.predicates_pushed.load(Ordering::Relaxed),
            projections_pushed: self.pushdown.projections_pushed.load(Ordering::Relaxed),
            joins_broadcast: self.pushdown.joins_broadcast.load(Ordering::Relaxed),
            joins_shuffled: self.pushdown.joins_shuffled.load(Ordering::Relaxed),
        }
    }

    fn explain(&self, expr: &AlgebraExpr) -> String {
        self.explain_plan(expr)
    }
}

/// The storage-layer reader options for a scan leaf's engine-agnostic options.
fn csv_options(options: ScanOptions) -> CsvOptions {
    CsvOptions {
        delimiter: options.delimiter,
        has_header: options.has_header,
        infer_schema: options.infer_schema,
    }
}

/// True when a map function operates strictly cell-by-cell, making it safe to apply to
/// blocks in either orientation.
fn per_cell_safe(func: &MapFunc) -> bool {
    matches!(
        func,
        MapFunc::IsNullMask
            | MapFunc::FillNull(_)
            | MapFunc::StrUpper
            | MapFunc::StrLower
            | MapFunc::NumericAdd(_)
            | MapFunc::NumericMul(_)
            | MapFunc::PerCell { .. }
    )
}

/// Whether an aggregate's partial results can be merged associatively.
fn mergeable(func: &AggFunc) -> bool {
    matches!(
        func,
        AggFunc::Count
            | AggFunc::CountNonNull
            | AggFunc::Sum
            | AggFunc::Mean
            | AggFunc::Min
            | AggFunc::Max
            | AggFunc::First
            | AggFunc::Last
            | AggFunc::Collect
    )
}

/// The partial (per-band) aggregations needed to later merge one logical aggregation.
fn partial_plan(agg: &Aggregation) -> Vec<Aggregation> {
    let label = agg.output_label();
    let partial_label =
        |suffix: &str| Cell::Str(format!("__partial_{}_{suffix}", label.to_raw_string()));
    match agg.func {
        AggFunc::Mean => vec![
            Aggregation {
                column: agg.column.clone(),
                func: AggFunc::Sum,
                alias: Some(partial_label("sum")),
            },
            Aggregation {
                column: agg.column.clone(),
                func: AggFunc::CountNonNull,
                alias: Some(partial_label("count")),
            },
        ],
        _ => vec![Aggregation {
            column: agg.column.clone(),
            func: agg.func.clone(),
            alias: Some(partial_label("value")),
        }],
    }
}

/// The merge-phase aggregations for one logical aggregation (applied to the partials).
fn merge_plans(agg: &Aggregation) -> Vec<Aggregation> {
    let label = agg.output_label();
    let partial_label =
        |suffix: &str| Cell::Str(format!("__partial_{}_{suffix}", label.to_raw_string()));
    match agg.func {
        // Mean is finalized later from the merged sum and the merged count.
        AggFunc::Mean => vec![
            Aggregation {
                column: Some(partial_label("sum")),
                func: AggFunc::Sum,
                alias: Some(partial_label("sum")),
            },
            Aggregation {
                column: Some(partial_label("count")),
                func: AggFunc::Sum,
                alias: Some(partial_label("count")),
            },
        ],
        _ => {
            let merged_func = match agg.func {
                AggFunc::Count | AggFunc::CountNonNull | AggFunc::Sum => AggFunc::Sum,
                AggFunc::Min => AggFunc::Min,
                AggFunc::Max => AggFunc::Max,
                AggFunc::First => AggFunc::First,
                AggFunc::Last => AggFunc::Last,
                AggFunc::Collect => AggFunc::Collect,
                AggFunc::Mean | AggFunc::Std => AggFunc::Sum,
            };
            vec![Aggregation {
                column: Some(partial_label("value")),
                func: merged_func,
                alias: Some(label),
            }]
        }
    }
}

/// Finalize merged aggregates: compute Mean from its sum/count partials, flatten
/// Collect-of-Collect nesting, and coerce integer-valued counts back to ints.
fn finalize_merged(
    mut result: DataFrame,
    keys: &[Cell],
    aggs: &[Aggregation],
    keys_as_labels: bool,
) -> DfResult<DataFrame> {
    // The merge pass produced columns named either by the final label or by the partial
    // labels (for Mean). Assemble the final column set in the requested order.
    let key_columns: Vec<Cell> = if keys_as_labels {
        vec![]
    } else {
        keys.to_vec()
    };
    let mut final_columns: Vec<(Cell, Vec<Cell>)> = Vec::new();
    for key in &key_columns {
        let j = result.col_position(key)?;
        final_columns.push((key.clone(), result.columns()[j].cells().to_vec()));
    }
    // Recompute the per-group mean from the merged sum and the merged count.
    let partial_label = |label: &Cell, suffix: &str| {
        Cell::Str(format!("__partial_{}_{suffix}", label.to_raw_string()))
    };
    for agg in aggs {
        let label = agg.output_label();
        match agg.func {
            AggFunc::Mean => {
                let sum_col = result.column_by_label(&partial_label(&label, "sum"))?;
                let count_col = result.column_by_label(&partial_label(&label, "count"))?;
                let cells: Vec<Cell> = sum_col
                    .cells()
                    .iter()
                    .zip(count_col.cells())
                    .map(|(s, c)| match (s.as_f64(), c.as_f64()) {
                        (Some(s), Some(c)) if c > 0.0 => Cell::Float(s / c),
                        _ => Cell::Null,
                    })
                    .collect();
                final_columns.push((label, cells));
            }
            AggFunc::Count | AggFunc::CountNonNull => {
                let col = result.column_by_label(&label)?;
                let cells: Vec<Cell> = col
                    .cells()
                    .iter()
                    .map(|c| match c.as_f64() {
                        Some(v) => Cell::Int(v as i64),
                        None => Cell::Null,
                    })
                    .collect();
                final_columns.push((label, cells));
            }
            AggFunc::Collect => {
                let col = result.column_by_label(&label)?;
                let cells: Vec<Cell> = col
                    .cells()
                    .iter()
                    .map(|c| match c {
                        Cell::List(outer) => {
                            let mut flat = Vec::new();
                            for item in outer {
                                match item {
                                    Cell::List(inner) => flat.extend(inner.iter().cloned()),
                                    other => flat.push(other.clone()),
                                }
                            }
                            Cell::List(flat)
                        }
                        other => other.clone(),
                    })
                    .collect();
                final_columns.push((label, cells));
            }
            _ => {
                let col = result.column_by_label(&label)?;
                final_columns.push((label, col.cells().to_vec()));
            }
        }
    }
    let row_labels = result.row_labels().clone();
    let labels: Vec<Cell> = final_columns.iter().map(|(l, _)| l.clone()).collect();
    let columns: Vec<df_core::dataframe::Column> = final_columns
        .into_iter()
        .map(|(_, cells)| df_core::dataframe::Column::new(cells))
        .collect();
    result = DataFrame::from_parts(columns, row_labels, df_types::labels::Labels::new(labels))?;
    Ok(result)
}

/// Rebuild a grid from flattened `(partition, deferred_transpose)` pairs produced by a
/// per-cell block map. The pairs arrive in row-band-major order with their original
/// offsets intact, so the band structure can be recovered by grouping on `row_offset`.
/// Bands are assembled one at a time (consuming each block's handle as it goes), and
/// the rebuilt full-width bands are checked back into the store.
fn rebuild_grid_like(
    parts: Vec<(Partition, bool)>,
    store: Option<&Arc<SpillStore>>,
) -> DfResult<PartitionGrid> {
    use std::collections::BTreeMap;
    let mut bands: BTreeMap<usize, Vec<Partition>> = BTreeMap::new();
    for (mut part, was_transposed) in parts {
        if was_transposed {
            // Re-materialise orientation: the block data is still stored transposed, so
            // resolve it now to keep the rebuilt grid simple.
            let logical = ops::reshape::transpose(&part.load_stored()?)?;
            part.replace(logical);
        }
        bands.entry(part.row_offset).or_default().push(part);
    }
    let mut band_parts: Vec<Partition> = Vec::with_capacity(bands.len());
    for (_, mut band) in bands {
        band.sort_by_key(|p| p.col_offset);
        let materialized: Vec<DataFrame> = band
            .into_iter()
            .map(Partition::into_materialized)
            .collect::<DfResult<_>>()?;
        band_parts.push(Partition::new_in(hstack_all(materialized)?, 0, 0, store)?);
    }
    Ok(PartitionGrid::from_band_partitions(band_parts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_core::algebra::{CmpOp, ColumnSelector, JoinOn, JoinType, SortSpec, WindowFunc};
    use df_core::engine::ReferenceEngine;
    use df_types::cell::cell;

    fn trips(rows: usize) -> DataFrame {
        let passenger: Vec<Cell> = (0..rows)
            .map(|i| {
                if i % 7 == 0 {
                    Cell::Null
                } else {
                    cell((i % 4 + 1) as i64)
                }
            })
            .collect();
        let fare: Vec<Cell> = (0..rows).map(|i| cell(5.0 + (i % 20) as f64)).collect();
        let vendor: Vec<Cell> = (0..rows)
            .map(|i| cell(if i % 2 == 0 { "CMT" } else { "VTS" }))
            .collect();
        DataFrame::from_columns(
            vec!["passenger_count", "fare", "vendor"],
            vec![passenger, fare, vendor],
        )
        .unwrap()
    }

    fn small_engine() -> ModinEngine {
        ModinEngine::with_config(ModinConfig::sequential().with_partition_size(16, 2))
    }

    fn assert_matches_reference(expr: &AlgebraExpr) {
        let reference = ReferenceEngine.execute_collect(expr).unwrap();
        let modin = small_engine().execute_collect(expr).unwrap();
        assert!(
            modin.same_data(&reference),
            "engine disagrees with reference\nreference:\n{reference}\nmodin:\n{modin}"
        );
    }

    #[test]
    fn map_selection_projection_match_reference() {
        let base = AlgebraExpr::literal(trips(100));
        assert_matches_reference(&base.clone().map(MapFunc::IsNullMask));
        assert_matches_reference(&base.clone().select(Predicate::ColCmp {
            column: cell("fare"),
            op: CmpOp::Gt,
            value: cell(15.0),
        }));
        assert_matches_reference(
            &base
                .clone()
                .project(ColumnSelector::ByLabels(vec![cell("fare"), cell("vendor")])),
        );
        assert_matches_reference(
            &base
                .clone()
                .select(Predicate::PositionRange { start: 37, end: 61 }),
        );
        assert_matches_reference(&base.rename(vec![(cell("vendor"), cell("vendor_id"))]));
    }

    #[test]
    fn groupby_partial_merge_matches_reference() {
        let base = AlgebraExpr::literal(trips(200));
        let aggs = vec![
            Aggregation::count_rows(),
            Aggregation::of("fare", AggFunc::Sum).with_alias("fare_sum"),
            Aggregation::of("fare", AggFunc::Mean).with_alias("fare_mean"),
            Aggregation::of("fare", AggFunc::Min).with_alias("fare_min"),
            Aggregation::of("fare", AggFunc::Max).with_alias("fare_max"),
            Aggregation::of("fare", AggFunc::CountNonNull).with_alias("fare_n"),
        ];
        assert_matches_reference(&base.clone().group_by(
            vec![cell("passenger_count")],
            aggs.clone(),
            false,
        ));
        // Global (single-group) aggregation — the Figure 2 groupby(1) query.
        assert_matches_reference(&base.group_by(vec![], aggs, false));
    }

    #[test]
    fn groupby_with_collect_and_std_falls_back_correctly() {
        let base = AlgebraExpr::literal(trips(60));
        assert_matches_reference(&base.clone().group_by(
            vec![cell("vendor")],
            vec![Aggregation::of("fare", AggFunc::Collect)],
            true,
        ));
        assert_matches_reference(&base.group_by(
            vec![cell("vendor")],
            vec![Aggregation::of("fare", AggFunc::Std).with_alias("fare_std")],
            false,
        ));
    }

    #[test]
    fn transpose_is_metadata_only_until_assembled() {
        let engine = small_engine();
        let expr = AlgebraExpr::literal(trips(64)).transpose();
        let grid = engine.execute_partitioned(&expr).unwrap();
        assert!(grid.deferred_transposes() > 0);
        let reference = ReferenceEngine.execute_collect(&expr).unwrap();
        assert!(grid.assemble().unwrap().same_data(&reference));
    }

    #[test]
    fn transpose_then_map_matches_reference() {
        let expr = AlgebraExpr::literal(trips(48))
            .transpose()
            .map(MapFunc::IsNullMask);
        assert_matches_reference(&expr);
    }

    #[test]
    fn fallback_operators_match_reference() {
        let base = AlgebraExpr::literal(trips(50));
        assert_matches_reference(&base.clone().sort(SortSpec::ascending(vec![cell("fare")])));
        assert_matches_reference(&base.clone().drop_duplicates());
        assert_matches_reference(&base.clone().window(
            ColumnSelector::ByLabels(vec![cell("fare")]),
            WindowFunc::CumSum,
        ));
        assert_matches_reference(&base.clone().to_labels("vendor"));
        assert_matches_reference(&base.clone().from_labels("row_id"));
        let other = AlgebraExpr::literal(trips(20));
        assert_matches_reference(&base.clone().union(other.clone()));
        assert_matches_reference(&base.clone().difference(other.clone()));
        assert_matches_reference(&base.join(
            other,
            df_core::algebra::JoinOn::Columns(vec![cell("vendor")]),
            df_core::algebra::JoinType::Inner,
        ));
    }

    #[test]
    fn shuffle_operators_never_fall_back() {
        // The acceptance criterion of the shuffle subsystem: JOIN, SORT,
        // DROP_DUPLICATES and DIFFERENCE run partition-parallel, not through the
        // assemble-and-delegate path. Each operator gets a fresh engine so the
        // counters are attributable.
        let base = || AlgebraExpr::literal(trips(120));
        let other = || AlgebraExpr::literal(trips(40));
        let shuffled: Vec<(&str, AlgebraExpr)> = vec![
            ("SORT", base().sort(SortSpec::ascending(vec![cell("fare")]))),
            ("DROP_DUPLICATES", base().drop_duplicates()),
            ("DIFFERENCE", base().difference(other())),
            (
                "JOIN",
                base().join(
                    other(),
                    df_core::algebra::JoinOn::Columns(vec![cell("vendor")]),
                    df_core::algebra::JoinType::Inner,
                ),
            ),
        ];
        for (name, expr) in shuffled {
            // Broadcast threshold 0 forces the full shuffle machinery for the binary
            // operators; unary ones shuffle regardless.
            let engine = ModinEngine::with_config(
                ModinConfig::sequential()
                    .with_partition_size(16, 2)
                    .with_broadcast_threshold(0),
            );
            let result = engine.execute_collect(&expr).unwrap();
            let reference = ReferenceEngine.execute_collect(&expr).unwrap();
            assert!(result.same_data(&reference), "{name} diverged");
            assert_eq!(engine.fallbacks_dispatched(), 0, "{name} fell back");
            assert!(engine.shuffles_dispatched() > 0, "{name} did not shuffle");
            assert!(engine.tasks_dispatched() > 0);
        }
        // And the remaining fallback operators do count their assembly.
        let engine = ModinEngine::with_config(ModinConfig::sequential().with_partition_size(16, 2));
        engine
            .execute_collect(&base().window(
                ColumnSelector::ByLabels(vec![cell("fare")]),
                WindowFunc::CumSum,
            ))
            .unwrap();
        assert_eq!(engine.fallbacks_dispatched(), 1);
        assert_eq!(engine.shuffles_dispatched(), 0);
    }

    #[test]
    fn handles_resume_from_the_grid_without_assembly_or_repartitioning() {
        let engine = small_engine();
        let expr = AlgebraExpr::literal(trips(100)).map(MapFunc::IsNullMask);
        let handle = engine.execute(&expr).unwrap();
        assert!(handle.is_partitioned());
        assert_eq!(handle.shape(), (100, 3));
        // Nothing assembled yet; executing over the handle resumes from the grid.
        assert_eq!(engine.assemblies_dispatched(), 0);
        let chained = AlgebraExpr::handle(handle.clone()).select(Predicate::ColCmp {
            column: cell("fare"),
            op: CmpOp::Eq,
            value: cell(false),
        });
        let grid = engine.execute_partitioned(&chained).unwrap();
        assert_eq!(engine.handles_reused(), 1);
        assert!(grid.n_row_bands() > 1, "handle reuse lost the partitioning");
        // Materialisation points count assemblies; prefix inspection does not.
        assert_eq!(engine.head_of(&handle, 5).unwrap().n_rows(), 5);
        assert_eq!(engine.assemblies_dispatched(), 0);
        let collected = engine.collect(&handle).unwrap();
        assert_eq!(collected.shape(), (100, 3));
        assert_eq!(engine.assemblies_dispatched(), 1);
        // A foreign (materialised) handle is repartitioned, not reused.
        let foreign = AlgebraExpr::handle(FrameHandle::from_dataframe(trips(30)));
        assert_eq!(engine.execute_collect(&foreign).unwrap().shape(), (30, 3));
        assert_eq!(engine.handles_reused(), 1);
    }

    #[test]
    fn limits_and_prefix_execution() {
        let engine = small_engine();
        let expr = AlgebraExpr::literal(trips(100)).map(MapFunc::IsNullMask);
        let head = engine.execute_prefix(&expr, 7).unwrap();
        assert_eq!(head.shape(), (7, 3));
        let reference = ReferenceEngine.execute_collect(&expr).unwrap().head(7);
        assert!(head.same_data(&reference));
        let tail = engine.execute_suffix(&expr, 4).unwrap();
        assert!(tail.same_data(&ReferenceEngine.execute_collect(&expr).unwrap().tail(4)));
        assert_matches_reference(&expr.limit(5, false));
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let expr = AlgebraExpr::literal(trips(300)).group_by(
            vec![cell("passenger_count")],
            vec![Aggregation::count_rows()],
            false,
        );
        let sequential =
            ModinEngine::with_config(ModinConfig::sequential().with_partition_size(32, 8))
                .execute_collect(&expr)
                .unwrap();
        let parallel = ModinEngine::with_config(
            ModinConfig::default()
                .with_threads(4)
                .with_partition_size(32, 8),
        )
        .execute_collect(&expr)
        .unwrap();
        assert!(sequential.same_data(&parallel));
    }

    #[test]
    fn engine_reports_kind_capabilities_and_tasks() {
        let engine = small_engine();
        assert_eq!(engine.kind(), EngineKind::Modin);
        assert!(engine.capabilities().lazy_execution);
        let expr = AlgebraExpr::literal(trips(64)).map(MapFunc::IsNullMask);
        engine.execute_collect(&expr).unwrap();
        assert!(engine.tasks_dispatched() > 0);
        assert_eq!(engine.config().threads, 1);
        let (optimized, stats) = engine.optimize_only(&expr.clone().transpose().transpose());
        assert_eq!(stats.transpose_pairs_eliminated, 1);
        assert_eq!(optimized.transpose_count(), 0);
    }

    #[test]
    fn deferred_schema_induction_leaves_raw_columns_untyped() {
        let raw = DataFrame::from_columns(
            vec!["price"],
            vec![vec![cell("10"), cell("20"), cell("30")]],
        )
        .unwrap();
        let deferred = small_engine()
            .execute_collect(&AlgebraExpr::literal(raw.clone()))
            .unwrap();
        assert_eq!(deferred.schema(), vec![None]);
        let eager_config = ModinConfig {
            defer_schema_induction: false,
            ..ModinConfig::sequential()
        };
        let eager = ModinEngine::with_config(eager_config)
            .execute_collect(&AlgebraExpr::literal(raw))
            .unwrap();
        assert_eq!(eager.cell(0, 0).unwrap(), &cell(10));
    }

    fn scan_csv_file(name: &str) -> (std::path::PathBuf, String) {
        let mut content = String::from("id,name,score,tag\n");
        for i in 0..60 {
            content.push_str(&format!("{i},row-{i},{}.5,t{}\n", i % 7, i % 3));
        }
        let dir = std::env::temp_dir().join(format!("df_engine_scan_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, &content).unwrap();
        (path, content)
    }

    fn scan_expr(path: &std::path::Path, identity: &str) -> AlgebraExpr {
        AlgebraExpr::scan_csv(df_core::scan::ScanCsv::new(
            path,
            df_core::scan::ScanOptions {
                infer_schema: true,
                ..df_core::scan::ScanOptions::default()
            },
            identity,
        ))
    }

    fn id_lt(value: i64) -> Predicate {
        Predicate::ColCmp {
            column: cell("id"),
            op: CmpOp::Lt,
            value: cell(value),
        }
    }

    #[test]
    fn scan_pushdown_matches_unoptimized_plan_and_counts() {
        let (path, content) = scan_csv_file("pushdown.csv");
        let expr = scan_expr(&path, "engine-pushdown")
            .select(id_lt(7))
            .project(ColumnSelector::ByLabels(vec![cell("score"), cell("id")]));
        let pushed_engine = small_engine();
        let pushed = pushed_engine.execute_collect(&expr).unwrap();
        let stats = pushed_engine.pushdown_stats();
        assert_eq!(stats.predicates_pushed, 1);
        assert_eq!(stats.projections_pushed, 1);
        assert_eq!(
            stats.chunks_skipped, 3,
            "ids 0..60 in 4 bands of 16, id < 7"
        );
        assert_eq!(stats.columns_pruned, 2, "name and tag never parse");
        // The same plan with every rewrite disabled parses the whole file and
        // filters afterwards — results must be cell-for-cell identical.
        let plain_config = ModinConfig {
            optimizer: OptimizerConfig::disabled(),
            ..ModinConfig::sequential().with_partition_size(16, 2)
        };
        let plain_engine = ModinEngine::with_config(plain_config);
        let plain = plain_engine.execute_collect(&expr).unwrap();
        let plain_stats = plain_engine.pushdown_stats();
        assert_eq!(plain_stats.predicates_pushed, 0);
        assert_eq!(plain_stats.chunks_skipped, 0);
        assert!(pushed.same_data(&plain), "pushdown changed the answer");
        assert_eq!(pushed.schema(), plain.schema());
        drop(content);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn scan_statistics_are_cached_per_identity() {
        let (path, _content) = scan_csv_file("cached.csv");
        let engine = small_engine();
        let expr = scan_expr(&path, "cache-test");
        engine.execute_collect(&expr).unwrap();
        // Delete the file: a second evaluation must still plan from the cached
        // statistics (the parse phase re-reads, so only run explain here).
        let rendered = engine.explain_plan(&scan_expr(&path, "cache-test").select(id_lt(7)));
        assert!(
            rendered.contains("SCAN_CSV"),
            "explain lost the scan leaf:\n{rendered}"
        );
        assert_eq!(engine.scan_stats.lock().len(), 1, "one entry per identity");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn explain_names_pushdowns_and_join_strategy() {
        let (path, _content) = scan_csv_file("explain.csv");
        let dim = DataFrame::from_columns(
            vec!["tag", "label"],
            vec![
                vec![cell("t0"), cell("t1"), cell("t2")],
                vec![cell("small"), cell("medium"), cell("large")],
            ],
        )
        .unwrap();
        let expr = scan_expr(&path, "explain-test")
            .select(id_lt(7))
            .project(ColumnSelector::ByLabels(vec![cell("tag"), cell("id")]))
            .join(
                AlgebraExpr::literal(dim),
                JoinOn::Columns(vec![cell("tag")]),
                JoinType::Inner,
            );
        let engine = small_engine();
        let rendered = engine.explain_plan(&expr);
        assert!(rendered.contains("== logical plan =="), "{rendered}");
        assert!(rendered.contains("== optimized plan =="), "{rendered}");
        assert!(
            rendered.contains("predicates pushed into scans: 1"),
            "{rendered}"
        );
        assert!(
            rendered.contains("projections pushed into scans: 1"),
            "{rendered}"
        );
        assert!(
            rendered.contains("JOIN: broadcast build side"),
            "3-row dim table must broadcast:\n{rendered}"
        );
        // Executing the join bumps the strategy counters the same way.
        engine.execute_collect(&expr).unwrap();
        assert_eq!(engine.pushdown_stats().joins_broadcast, 1);
        assert_eq!(engine.pushdown_stats().joins_shuffled, 0);
        // Threshold 0 forces the shuffle path and the counter follows.
        let shuffle_engine = ModinEngine::with_config(
            ModinConfig::sequential()
                .with_partition_size(16, 2)
                .with_broadcast_threshold(0),
        );
        shuffle_engine.execute_collect(&expr).unwrap();
        assert_eq!(shuffle_engine.pushdown_stats().joins_shuffled, 1);
        std::fs::remove_file(path).ok();
    }
}
