//! Partitioned representation of a dataframe.
//!
//! Paper §3.1: MODIN "flexibly move\[s\] between common partitioning schemes: row-based,
//! column-based, or block-based partitioning, depending on the operation", and
//! implements TRANSPOSE by individually transposing blocks and then only "chang\[ing\]
//! the overall metadata tracking the new locations of each of the blocks", so a large
//! transpose requires no communication.
//!
//! [`PartitionGrid`] is that representation: a 2-D grid of [`Partition`]s, each holding
//! a rectangular block of the logical frame plus its `(row_offset, col_offset)` and an
//! orientation flag. `PartitionGrid::transpose` flips the grid and the flags without
//! touching any cell; blocks materialise their transposed form lazily when an operator
//! actually needs their data.
//!
//! Blocks are owned through a [`PartitionHandle`] (paper §3.3's storage layer): either
//! *resident* — the handle holds the [`DataFrame`] directly — or *stored* — the block
//! lives in a session-scoped [`SpillStore`] that keeps partitions in memory up to a
//! byte budget and transparently spills the least-recently-used ones to disk. Handles
//! are cheap to clone (stored blocks are reference-counted) and the block is removed
//! from the store when its last handle drops, so intermediate results never leak.
//! Operators built on [`PartitionGrid::par_bands`] / [`PartitionGrid::map_bands`]
//! follow the out-of-core lifecycle: each worker *loads* one band, *computes*, and
//! *stores* the result — pinning only the bands actively being transformed.

use std::fmt;
use std::sync::Arc;

use df_storage::spill::{PartitionId, SpillStore};
use df_types::domain::Domain;
use df_types::error::{DfError, DfResult};
use df_types::labels::Labels;

use df_core::columnar::ColumnBlock;
use df_core::dataframe::{Column, DataFrame};
use df_core::ops::reshape;
use df_core::ops::setops;

use crate::executor::ParallelExecutor;

/// How a frame is split into partitions (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionScheme {
    /// Each partition holds a contiguous run of rows (all columns).
    Row,
    /// Each partition holds a contiguous run of columns (all rows).
    Column,
    /// Each partition holds a rectangular block of rows × columns.
    Block,
}

/// Sizing knobs for partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionConfig {
    /// Target number of rows per partition.
    pub target_rows: usize,
    /// Target number of columns per partition.
    pub target_cols: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            target_rows: 16_384,
            target_cols: 32,
        }
    }
}

/// A block checked into a session-scoped [`SpillStore`]. The stored-orientation
/// shape, column labels and per-column domains are cached so grid metadata (shapes,
/// offsets, band row counts, key-column resolution, `schema()` answers) never has to
/// load the block; the store entry is removed when the last handle to this block
/// drops. Row labels are *not* cached — they scale with the data and caching them
/// would defeat the spill.
pub struct StoredBlock {
    store: Arc<SpillStore>,
    id: PartitionId,
    rows: usize,
    cols: usize,
    col_labels: Labels,
    domains: Vec<Option<Domain>>,
    /// Approximate payload size captured at check-in, so budget accounting (the
    /// shared result cache) can cost a fully spilled grid without load-backs.
    bytes: usize,
}

impl Drop for StoredBlock {
    fn drop(&mut self) {
        self.store.remove(self.id).ok();
    }
}

impl fmt::Debug for StoredBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StoredBlock")
            .field("id", &self.id)
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .finish()
    }
}

/// Where a partition's block physically lives (paper §3.3's modular storage layer):
/// directly in memory, or in the session's [`SpillStore`] under its memory budget.
///
/// Both arms are reference-counted, so cloning a handle (e.g. when a statement
/// resumes from a cached result handle at the waist) shares the block instead of
/// copying it; a consuming access ([`PartitionHandle::into_frame`]) moves the data
/// out only when the handle is the last owner and copies-on-write otherwise.
#[derive(Debug, Clone)]
pub enum PartitionHandle {
    /// The handle owns the block in memory (shared with any clones of the handle).
    Resident(Arc<DataFrame>),
    /// The handle owns the block in memory in its typed columnar form; loading it
    /// decodes to a frame. Only explicit check-ins create this arm (ingest's per-band
    /// parse above all) — intermediate operator results stay row-oriented rather than
    /// paying an encode/decode round trip per operator.
    Columnar(Arc<ColumnBlock>),
    /// The block is managed by a spill store; loading it may read a spill file.
    Stored(Arc<StoredBlock>),
}

impl PartitionHandle {
    /// Wrap a frame: checked into `store` when one is provided, resident otherwise.
    pub fn new_in(frame: DataFrame, store: Option<&Arc<SpillStore>>) -> DfResult<PartitionHandle> {
        match store {
            Some(store) => {
                let (rows, cols) = frame.shape();
                let col_labels = frame.col_labels().clone();
                let domains = frame.schema();
                let bytes = frame.approx_size_bytes();
                let id = store.put(frame)?;
                Ok(PartitionHandle::Stored(Arc::new(StoredBlock {
                    store: Arc::clone(store),
                    id,
                    rows,
                    cols,
                    col_labels,
                    domains,
                    bytes,
                })))
            }
            None => Ok(PartitionHandle::Resident(Arc::new(frame))),
        }
    }

    /// Wrap an already-encoded typed column block: checked into `store` when one is
    /// provided (the store keeps it columnar and spills it as typed v3 buffers),
    /// held columnar in memory otherwise.
    pub fn columnar_in(
        block: ColumnBlock,
        store: Option<&Arc<SpillStore>>,
    ) -> DfResult<PartitionHandle> {
        match store {
            Some(store) => {
                let (rows, cols) = block.shape();
                let col_labels = block.col_labels().clone();
                let domains = block.domains().to_vec();
                let bytes = block.approx_size_bytes();
                let id = store.put_block(block)?;
                Ok(PartitionHandle::Stored(Arc::new(StoredBlock {
                    store: Arc::clone(store),
                    id,
                    rows,
                    cols,
                    col_labels,
                    domains,
                    bytes,
                })))
            }
            None => Ok(PartitionHandle::Columnar(Arc::new(block))),
        }
    }

    /// Stored-orientation shape, from metadata only (never loads the block).
    pub fn shape(&self) -> (usize, usize) {
        match self {
            PartitionHandle::Resident(frame) => frame.shape(),
            PartitionHandle::Columnar(block) => block.shape(),
            PartitionHandle::Stored(block) => (block.rows, block.cols),
        }
    }

    /// True when the block currently lives in a spill store rather than this handle.
    pub fn is_stored(&self) -> bool {
        matches!(self, PartitionHandle::Stored(_))
    }

    /// Approximate block size in bytes, from metadata only: resident and columnar
    /// blocks measure themselves, stored blocks answer from the size cached at
    /// check-in — so costing a fully spilled grid never triggers a load-back.
    pub fn approx_size_bytes(&self) -> usize {
        match self {
            PartitionHandle::Resident(frame) => frame.approx_size_bytes(),
            PartitionHandle::Columnar(block) => block.approx_size_bytes(),
            PartitionHandle::Stored(block) => block.bytes,
        }
    }

    /// Stored-orientation column labels, from metadata only (never loads the block).
    pub fn col_labels(&self) -> Labels {
        match self {
            PartitionHandle::Resident(frame) => frame.col_labels().clone(),
            PartitionHandle::Columnar(block) => block.col_labels().clone(),
            PartitionHandle::Stored(block) => block.col_labels.clone(),
        }
    }

    /// Stored-orientation per-column domains, from metadata only: resident frames
    /// report their columns' known domains, columnar blocks carry theirs, and stored
    /// blocks cached theirs at check-in time — so a spilled grid answers dtype
    /// questions with zero load-backs.
    pub fn col_domains(&self) -> Vec<Option<Domain>> {
        match self {
            PartitionHandle::Resident(frame) => frame.schema(),
            PartitionHandle::Columnar(block) => block.domains().to_vec(),
            PartitionHandle::Stored(block) => block.domains.clone(),
        }
    }

    /// Load the block (cloning a resident frame, decoding a columnar one, fetching —
    /// and possibly reading back from disk — a stored one).
    pub fn load(&self) -> DfResult<DataFrame> {
        match self {
            PartitionHandle::Resident(frame) => Ok(frame.as_ref().clone()),
            PartitionHandle::Columnar(block) => Ok(block.to_frame()),
            PartitionHandle::Stored(block) => block.store.get(block.id),
        }
    }

    /// Consume the handle and take the block: a uniquely-held resident frame moves
    /// out copy-free (a shared one copies-on-write); a columnar block decodes; a
    /// uniquely-held stored block is taken out of the store (freeing its budget); a
    /// stored block with other live handles is fetched non-destructively.
    pub fn into_frame(self) -> DfResult<DataFrame> {
        match self {
            PartitionHandle::Resident(frame) => {
                Ok(Arc::try_unwrap(frame).unwrap_or_else(|shared| shared.as_ref().clone()))
            }
            PartitionHandle::Columnar(block) => Ok(block.to_frame()),
            PartitionHandle::Stored(block) => match Arc::try_unwrap(block) {
                // `take` removes the entry; the unwrapped block's Drop then finds
                // nothing to remove, which is fine.
                Ok(block) => block.store.take(block.id),
                Err(shared) => shared.store.get(shared.id),
            },
        }
    }
}

/// One rectangular block of a partitioned dataframe.
#[derive(Debug, Clone)]
pub struct Partition {
    handle: PartitionHandle,
    /// Global row offset of this block's first row.
    pub row_offset: usize,
    /// Global column offset of this block's first column.
    pub col_offset: usize,
    /// When true the stored frame is the transpose of the logical block: the logical
    /// data is obtained by transposing on access (the deferred half of the metadata
    /// transpose).
    transposed: bool,
}

impl Partition {
    /// Wrap a materialised block held in memory.
    pub fn new(frame: DataFrame, row_offset: usize, col_offset: usize) -> Self {
        Partition {
            handle: PartitionHandle::Resident(Arc::new(frame)),
            row_offset,
            col_offset,
            transposed: false,
        }
    }

    /// Wrap a materialised block, checking it into `store` when one is provided (the
    /// "store-and-maybe-spill" step of the out-of-core lifecycle).
    pub fn new_in(
        frame: DataFrame,
        row_offset: usize,
        col_offset: usize,
        store: Option<&Arc<SpillStore>>,
    ) -> DfResult<Self> {
        Ok(Partition {
            handle: PartitionHandle::new_in(frame, store)?,
            row_offset,
            col_offset,
            transposed: false,
        })
    }

    /// Wrap a typed column block, checking it into `store` when one is provided.
    /// This is how ingest's per-band parse checks typed columns straight into the
    /// session store.
    pub fn new_columnar_in(
        block: ColumnBlock,
        row_offset: usize,
        col_offset: usize,
        store: Option<&Arc<SpillStore>>,
    ) -> DfResult<Self> {
        Ok(Partition {
            handle: PartitionHandle::columnar_in(block, store)?,
            row_offset,
            col_offset,
            transposed: false,
        })
    }

    /// Logical number of rows of the block.
    pub fn n_rows(&self) -> usize {
        let (rows, cols) = self.handle.shape();
        if self.transposed {
            cols
        } else {
            rows
        }
    }

    /// Logical number of columns of the block.
    pub fn n_cols(&self) -> usize {
        let (rows, cols) = self.handle.shape();
        if self.transposed {
            rows
        } else {
            cols
        }
    }

    /// Whether the block still defers its physical transpose.
    pub fn is_deferred_transpose(&self) -> bool {
        self.transposed
    }

    /// Logical column labels of the block. Metadata-only for the common untransposed
    /// case; a deferred transpose must materialise (its logical column labels are the
    /// stored row labels, which handles deliberately do not cache).
    pub fn col_labels(&self) -> DfResult<Labels> {
        if self.transposed {
            return Ok(self.materialize()?.col_labels().clone());
        }
        Ok(self.handle.col_labels())
    }

    /// Logical per-column domains of the block, from metadata only. `None` for a
    /// deferred transpose (its logical columns are the stored rows, whose domains
    /// handles deliberately do not cache) — callers fall back to materialising.
    pub fn col_domains(&self) -> Option<Vec<Option<Domain>>> {
        if self.transposed {
            return None;
        }
        Some(self.handle.col_domains())
    }

    /// The handle this partition owns its block through.
    pub fn handle(&self) -> &PartitionHandle {
        &self.handle
    }

    /// Load the block in its *stored* orientation, without resolving a deferred
    /// transpose (used by operators that are orientation-agnostic, e.g. per-cell
    /// maps).
    pub fn load_stored(&self) -> DfResult<DataFrame> {
        self.handle.load()
    }

    /// Materialise the logical block, resolving any deferred transpose.
    pub fn materialize(&self) -> DfResult<DataFrame> {
        let frame = self.handle.load()?;
        if self.transposed {
            reshape::transpose(&frame)
        } else {
            Ok(frame)
        }
    }

    /// Consume the partition and materialise its logical block, moving the block out
    /// of its handle (and freeing its store entry) when no transpose is pending.
    pub fn into_materialized(self) -> DfResult<DataFrame> {
        let frame = self.handle.into_frame()?;
        if self.transposed {
            reshape::transpose(&frame)
        } else {
            Ok(frame)
        }
    }

    /// Replace the block's contents with an already-materialised in-memory frame.
    pub fn replace(&mut self, frame: DataFrame) {
        self.handle = PartitionHandle::Resident(Arc::new(frame));
        self.transposed = false;
    }

    /// Flip the logical orientation without touching the data.
    fn flip(&mut self) {
        self.transposed = !self.transposed;
        std::mem::swap(&mut self.row_offset, &mut self.col_offset);
    }
}

/// Schema metadata a scan-rooted grid inherits from its plan/statistics pass: the
/// scan's output column labels with their reconciled domains. Unlike the per-handle
/// metadata [`PartitionGrid::schema`] normally reads, this survives a metadata-only
/// [`PartitionGrid::transpose`] — the scan knew its schema before any block existed,
/// so a deferred reorientation does not hide it.
#[derive(Debug, Clone)]
pub struct ScanSchema {
    /// Output column labels × reconciled domains, in scan output order.
    pub columns: df_core::handle::FrameSchema,
    /// True when the scan emitted every planned row (no predicate was pushed into
    /// it), so row labels are the sequential global indices `0..rows` and the
    /// *transposed* grid's column labels are also statically known.
    pub sequential_rows: bool,
    /// Parity of metadata-only transposes applied since the scan: `true` after an
    /// odd number, i.e. the grid's logical columns are currently the scan's rows.
    pub transposed: bool,
}

/// A dataframe split into a grid of partitions.
#[derive(Debug, Clone)]
pub struct PartitionGrid {
    /// blocks[r][c] covers row-band `r` and column-band `c`.
    blocks: Vec<Vec<Partition>>,
    scheme: PartitionScheme,
    /// Present on scan-rooted grids: the statically known schema that answers
    /// [`PartitionGrid::schema`] even when a deferred transpose hides the per-handle
    /// column metadata.
    scan_schema: Option<Arc<ScanSchema>>,
}

impl PartitionGrid {
    /// Partition a dataframe under the given scheme and sizing configuration, keeping
    /// every block resident.
    pub fn from_dataframe(
        df: &DataFrame,
        scheme: PartitionScheme,
        config: PartitionConfig,
    ) -> DfResult<PartitionGrid> {
        PartitionGrid::from_dataframe_in(df, scheme, config, None)
    }

    /// Like [`PartitionGrid::from_dataframe`], but blocks are checked into `store`
    /// when one is provided — so even the initial partitioning step respects the
    /// session's memory budget (blocks beyond it spill as they are created).
    pub fn from_dataframe_in(
        df: &DataFrame,
        scheme: PartitionScheme,
        config: PartitionConfig,
        store: Option<&Arc<SpillStore>>,
    ) -> DfResult<PartitionGrid> {
        let (m, n) = df.shape();
        let row_chunk = match scheme {
            PartitionScheme::Column => m.max(1),
            _ => config.target_rows.max(1),
        };
        let col_chunk = match scheme {
            PartitionScheme::Row => n.max(1),
            _ => config.target_cols.max(1),
        };
        let row_bands = split_ranges(m, row_chunk);
        let col_bands = split_ranges(n, col_chunk);
        let mut blocks = Vec::with_capacity(row_bands.len());
        for &(row_start, row_end) in &row_bands {
            let row_labels = Labels::new(df.row_labels().as_slice()[row_start..row_end].to_vec());
            let mut band = Vec::with_capacity(col_bands.len());
            for &(col_start, col_end) in &col_bands {
                // Build each block with a single pass over its cells (slicing rows and
                // then selecting columns would copy every cell twice).
                let columns: Vec<Column> = (col_start..col_end)
                    .map(|j| {
                        let source = &df.columns()[j];
                        let cells = source.cells()[row_start..row_end].to_vec();
                        match source.known_domain() {
                            Some(domain) => Column::with_domain(cells, domain),
                            None => Column::new(cells),
                        }
                    })
                    .collect();
                let col_labels =
                    Labels::new(df.col_labels().as_slice()[col_start..col_end].to_vec());
                let block = DataFrame::from_parts(columns, row_labels.clone(), col_labels)?;
                band.push(Partition::new_in(block, row_start, col_start, store)?);
            }
            blocks.push(band);
        }
        Ok(PartitionGrid {
            blocks,
            scheme,
            scan_schema: None,
        })
    }

    /// Wrap a single frame as a 1×1 grid.
    pub fn single(df: DataFrame) -> PartitionGrid {
        PartitionGrid {
            blocks: vec![vec![Partition::new(df, 0, 0)]],
            scheme: PartitionScheme::Block,
            scan_schema: None,
        }
    }

    /// Wrap a single frame as a 1×1 grid, checked into `store` when one is provided.
    pub fn single_in(df: DataFrame, store: Option<&Arc<SpillStore>>) -> DfResult<PartitionGrid> {
        Ok(PartitionGrid {
            blocks: vec![vec![Partition::new_in(df, 0, 0, store)?]],
            scheme: PartitionScheme::Block,
            scan_schema: None,
        })
    }

    /// The partitioning scheme this grid was built with.
    pub fn scheme(&self) -> PartitionScheme {
        self.scheme
    }

    /// Attach the statically known schema of a scan-rooted grid (output labels ×
    /// reconciled domains, in scan output order). `sequential_rows` records whether
    /// the scan emitted every planned row, making the transposed grid's column
    /// labels (`0..rows`) statically known too.
    pub fn with_scan_schema(
        mut self,
        columns: df_core::handle::FrameSchema,
        sequential_rows: bool,
    ) -> PartitionGrid {
        self.scan_schema = Some(Arc::new(ScanSchema {
            columns,
            sequential_rows,
            transposed: false,
        }));
        self
    }

    /// The scan-rooted schema metadata, when this grid carries any.
    pub fn scan_schema(&self) -> Option<&ScanSchema> {
        self.scan_schema.as_deref()
    }

    /// Number of row bands.
    pub fn n_row_bands(&self) -> usize {
        self.blocks.len()
    }

    /// Number of column bands.
    pub fn n_col_bands(&self) -> usize {
        self.blocks.first().map(Vec::len).unwrap_or(0)
    }

    /// Total number of partitions.
    pub fn n_partitions(&self) -> usize {
        self.n_row_bands() * self.n_col_bands()
    }

    /// Number of partitions currently held by a spill store (metadata only).
    pub fn stored_partitions(&self) -> usize {
        self.blocks
            .iter()
            .flatten()
            .filter(|p| p.handle().is_stored())
            .count()
    }

    /// Approximate total size of every block in bytes, from metadata only — stored
    /// blocks answer from the size cached at check-in, so costing a fully spilled
    /// grid triggers no load-backs. Budget-accounted result caches use this to
    /// charge a grid-backed handle against their byte budget.
    pub fn approx_size_bytes(&self) -> usize {
        self.blocks
            .iter()
            .flatten()
            .map(|p| p.handle().approx_size_bytes())
            .sum()
    }

    /// Logical shape of the whole frame.
    pub fn shape(&self) -> (usize, usize) {
        let rows: usize = self.blocks.iter().map(|band| band[0].n_rows()).sum();
        let cols: usize = self
            .blocks
            .first()
            .map(|band| band.iter().map(Partition::n_cols).sum())
            .unwrap_or(0);
        (rows, cols)
    }

    /// Per-band logical row counts, from metadata only (no block is loaded).
    pub fn band_row_counts(&self) -> Vec<usize> {
        self.blocks.iter().map(|band| band[0].n_rows()).collect()
    }

    /// Logical column labels paired with their known domains, from metadata only: no
    /// block is loaded (and in particular no spilled block is read back), mirroring
    /// what [`PartitionGrid::shape`] does for dimensions. `None` when a deferred
    /// transpose hides the logical columns — those callers materialise instead.
    pub fn schema(&self) -> Option<df_core::handle::FrameSchema> {
        let Some(first) = self.blocks.first() else {
            return Some(Vec::new());
        };
        let mut out = Vec::new();
        for part in first {
            if part.is_deferred_transpose() {
                // Scan-rooted grids still answer: the scan knew its schema before
                // any block existed, so the deferred reorientation hides nothing.
                return self.scan_fallback_schema();
            }
            let labels = part.handle().col_labels();
            let domains = part.handle().col_domains();
            out.extend(labels.into_vec().into_iter().zip(domains));
        }
        Some(out)
    }

    /// Answer `schema()` for a scan-rooted grid whose blocks defer a transpose. At
    /// even parity the scan's own reconciled schema applies; at odd parity the
    /// logical columns are the scan's global row indices — statically known (with
    /// unknowable per-column domains) only when no pushed predicate filtered rows.
    fn scan_fallback_schema(&self) -> Option<df_core::handle::FrameSchema> {
        let scan = self.scan_schema.as_deref()?;
        if !scan.transposed {
            return Some(scan.columns.clone());
        }
        scan.sequential_rows.then(|| {
            (0..self.shape().1)
                .map(|i| (df_types::cell::Cell::Int(i as i64), None))
                .collect()
        })
    }

    /// Borrow all partitions row-band by row-band.
    pub fn blocks(&self) -> &[Vec<Partition>] {
        &self.blocks
    }

    /// Mutably borrow all partitions.
    pub fn blocks_mut(&mut self) -> &mut [Vec<Partition>] {
        &mut self.blocks
    }

    /// Consume the grid, returning its partitions.
    pub fn into_blocks(self) -> Vec<Vec<Partition>> {
        self.blocks
    }

    /// Build a grid from row bands that each hold a full-width in-memory frame.
    pub fn from_row_bands(bands: Vec<DataFrame>) -> PartitionGrid {
        PartitionGrid::from_band_partitions(
            bands
                .into_iter()
                .map(|frame| Partition::new(frame, 0, 0))
                .collect(),
        )
    }

    /// Like [`PartitionGrid::from_row_bands`], but each band is checked into `store`
    /// when one is provided.
    pub fn from_row_bands_in(
        bands: Vec<DataFrame>,
        store: Option<&Arc<SpillStore>>,
    ) -> DfResult<PartitionGrid> {
        let parts: Vec<Partition> = bands
            .into_iter()
            .map(|frame| Partition::new_in(frame, 0, 0, store))
            .collect::<DfResult<_>>()?;
        Ok(PartitionGrid::from_band_partitions(parts))
    }

    /// Build a row-partitioned grid from full-width band partitions, re-deriving each
    /// band's global row offset from the metadata shapes.
    pub fn from_band_partitions(parts: Vec<Partition>) -> PartitionGrid {
        let mut offset = 0usize;
        let blocks = parts
            .into_iter()
            .map(|mut part| {
                part.row_offset = offset;
                part.col_offset = 0;
                offset += part.n_rows();
                vec![part]
            })
            .collect();
        PartitionGrid {
            blocks,
            scheme: PartitionScheme::Row,
            scan_schema: None,
        }
    }

    /// Consume the grid into one full-width [`Partition`] per row band. Bands already
    /// held as a single block are moved without loading anything; multi-block bands
    /// are assembled one at a time and checked into `store` — so the conversion never
    /// holds more than one assembled band in memory beyond the store's budget.
    pub fn into_band_partitions(self, store: Option<&Arc<SpillStore>>) -> DfResult<Vec<Partition>> {
        let mut parts = Vec::with_capacity(self.blocks.len());
        for band in self.blocks {
            if band.len() == 1 {
                let Some(mut part) = band.into_iter().next() else {
                    return Err(DfError::internal("grid band lost its only partition"));
                };
                part.col_offset = 0;
                parts.push(part);
                continue;
            }
            let row_offset = band[0].row_offset;
            let materialized: Vec<DataFrame> = band
                .into_iter()
                .map(Partition::into_materialized)
                .collect::<DfResult<_>>()?;
            parts.push(Partition::new_in(
                hstack_all(materialized)?,
                row_offset,
                0,
                store,
            )?);
        }
        Ok(parts)
    }

    /// Fan one closure out over the grid's full-width row bands, loading each band
    /// *inside* its worker task: at most `executor.threads()` bands are materialised
    /// at any moment, and consumed store entries are freed as the workers drain them.
    pub fn par_bands<T: Send>(
        self,
        executor: &ParallelExecutor,
        f: impl Fn(usize, DataFrame) -> DfResult<T> + Send + Sync,
    ) -> DfResult<Vec<T>> {
        executor.par_map(self.blocks, |index, band| {
            let materialized: Vec<DataFrame> = band
                .into_iter()
                .map(Partition::into_materialized)
                .collect::<DfResult<_>>()?;
            f(index, hstack_all(materialized)?)
        })
    }

    /// The out-of-core band map: for every row band, *load* it, apply `f`, and *store*
    /// the result (into `store` when provided, else resident) — the
    /// load → compute → store-and-maybe-spill lifecycle of paper §3.3.
    pub fn map_bands(
        self,
        executor: &ParallelExecutor,
        store: Option<&Arc<SpillStore>>,
        f: impl Fn(usize, DataFrame) -> DfResult<DataFrame> + Send + Sync,
    ) -> DfResult<PartitionGrid> {
        let store = store.cloned();
        let parts = self.par_bands(executor, move |index, band| {
            Partition::new_in(f(index, band)?, 0, 0, store.as_ref())
        })?;
        Ok(PartitionGrid::from_band_partitions(parts))
    }

    /// Materialise one full-width row band by index (resolving deferred transposes),
    /// leaving the grid intact. Streaming consumers — the banded CSV writer above
    /// all — call this once per band, so only one band is resident at a time even
    /// when the grid is larger than memory.
    pub fn band(&self, index: usize) -> DfResult<DataFrame> {
        let band = self.blocks.get(index).ok_or(DfError::IndexOutOfBounds {
            axis: "row band",
            index,
            len: self.blocks.len(),
        })?;
        let blocks: Vec<DataFrame> = band
            .iter()
            .map(Partition::materialize)
            .collect::<DfResult<_>>()?;
        hstack_all(blocks)
    }

    /// Materialise every row band as a full-width frame (resolving deferred
    /// transposes), returned in order. This is the repartitioning step operators that
    /// need whole rows use.
    pub fn row_bands(&self) -> DfResult<Vec<DataFrame>> {
        let mut bands = Vec::with_capacity(self.n_row_bands());
        for band in &self.blocks {
            let blocks: Vec<DataFrame> = band
                .iter()
                .map(Partition::materialize)
                .collect::<DfResult<_>>()?;
            bands.push(hstack_all(blocks)?);
        }
        Ok(bands)
    }

    /// Like [`PartitionGrid::row_bands`], but consuming the grid: blocks that need no
    /// deferred transpose are moved instead of cloned (and their store entries freed),
    /// so assembling an owned grid copies no cells on the common row-partitioned path.
    pub fn into_row_bands(self) -> DfResult<Vec<DataFrame>> {
        let mut bands = Vec::with_capacity(self.blocks.len());
        for band in self.blocks {
            let materialized: Vec<DataFrame> = band
                .into_iter()
                .map(Partition::into_materialized)
                .collect::<DfResult<_>>()?;
            bands.push(hstack_all(materialized)?);
        }
        Ok(bands)
    }

    /// Assemble the full logical dataframe.
    pub fn assemble(&self) -> DfResult<DataFrame> {
        setops::union_all(self.row_bands()?)
    }

    /// Assemble by consuming the grid — the copy-free variant of
    /// [`PartitionGrid::assemble`] for callers that own the grid.
    pub fn into_dataframe(self) -> DfResult<DataFrame> {
        setops::union_all(self.into_row_bands()?)
    }

    /// The metadata-only TRANSPOSE (paper §3.1): swap the grid axes and flip every
    /// block's orientation flag. No cell is copied — stored blocks merely gain another
    /// reference-counted handle; blocks materialise their transposed data only if a
    /// later operator needs it.
    pub fn transpose(&self) -> PartitionGrid {
        let row_bands = self.n_row_bands();
        let col_bands = self.n_col_bands();
        let mut blocks: Vec<Vec<Partition>> = Vec::with_capacity(col_bands);
        for c in 0..col_bands {
            let mut band = Vec::with_capacity(row_bands);
            for r in 0..row_bands {
                let mut part = self.blocks[r][c].clone();
                part.flip();
                band.push(part);
            }
            blocks.push(band);
        }
        PartitionGrid {
            blocks,
            scheme: self.scheme,
            // A metadata-only transpose flips the scan schema's parity rather than
            // discarding it; schema() adjusts its answer accordingly.
            scan_schema: self.scan_schema.as_ref().map(|s| {
                Arc::new(ScanSchema {
                    transposed: !s.transposed,
                    ..(**s).clone()
                })
            }),
        }
    }

    /// First `k` logical rows, touching only the row bands needed to produce them
    /// (the partition-aware half of §6.1.2 prefix execution).
    pub fn prefix(&self, k: usize) -> DfResult<DataFrame> {
        let mut collected: Vec<DataFrame> = Vec::new();
        let mut remaining = k;
        for band in &self.blocks {
            if remaining == 0 {
                break;
            }
            let blocks: Vec<DataFrame> = band
                .iter()
                .map(Partition::materialize)
                .collect::<DfResult<_>>()?;
            let band_frame = hstack_all(blocks)?;
            let take = band_frame.head(remaining);
            remaining = remaining.saturating_sub(take.n_rows());
            collected.push(take);
        }
        setops::union_all(collected)
    }

    /// Last `k` logical rows, touching only the trailing row bands needed to produce
    /// them — the suffix mirror of [`PartitionGrid::prefix`], so `tail` inspection
    /// (§6.1.2) never assembles the whole frame either.
    pub fn suffix(&self, k: usize) -> DfResult<DataFrame> {
        let mut collected: Vec<DataFrame> = Vec::new();
        let mut remaining = k;
        for band in self.blocks.iter().rev() {
            if remaining == 0 {
                break;
            }
            let blocks: Vec<DataFrame> = band
                .iter()
                .map(Partition::materialize)
                .collect::<DfResult<_>>()?;
            let band_frame = hstack_all(blocks)?;
            let take = band_frame.tail(remaining);
            remaining = remaining.saturating_sub(take.n_rows());
            collected.push(take);
        }
        collected.reverse();
        setops::union_all(collected)
    }

    /// Number of partitions whose transpose is still deferred (used in tests and the
    /// partitioning ablation to verify that TRANSPOSE really was metadata-only).
    pub fn deferred_transposes(&self) -> usize {
        self.blocks
            .iter()
            .flatten()
            .filter(|p| p.is_deferred_transpose())
            .count()
    }
}

/// Horizontally concatenate two frames with identical row counts and labels.
pub fn hstack(left: &DataFrame, right: &DataFrame) -> DfResult<DataFrame> {
    if left.n_rows() != right.n_rows() {
        return Err(DfError::shape(
            format!("{} rows", left.n_rows()),
            format!("{} rows", right.n_rows()),
        ));
    }
    let mut columns: Vec<Column> = left.columns().to_vec();
    columns.extend(right.columns().iter().cloned());
    let labels = left.col_labels().concat(right.col_labels());
    DataFrame::from_parts(columns, left.row_labels().clone(), labels)
}

/// Multi-way [`hstack`]: concatenate all frames side by side with a single pre-sized
/// column vector, moving each frame's columns instead of cloning them. Row labels come
/// from the first frame; row counts must agree. Equivalent to folding `hstack`
/// left-to-right but O(total columns) instead of re-copying the accumulator per frame.
pub fn hstack_all(frames: Vec<DataFrame>) -> DfResult<DataFrame> {
    let mut frames = frames;
    if frames.len() <= 1 {
        return Ok(frames.pop().unwrap_or_else(DataFrame::empty));
    }
    let n_rows = frames[0].n_rows();
    if let Some(bad) = frames.iter().find(|f| f.n_rows() != n_rows) {
        return Err(DfError::shape(
            format!("{n_rows} rows"),
            format!("{} rows", bad.n_rows()),
        ));
    }
    let total_cols: usize = frames.iter().map(DataFrame::n_cols).sum();
    let mut columns: Vec<Column> = Vec::with_capacity(total_cols);
    let mut col_labels: Vec<df_types::cell::Cell> = Vec::with_capacity(total_cols);
    let mut row_labels: Option<Labels> = None;
    for frame in frames {
        let (frame_columns, frame_row_labels, frame_col_labels) = frame.into_parts();
        if row_labels.is_none() {
            row_labels = Some(frame_row_labels);
        }
        columns.extend(frame_columns);
        col_labels.extend(frame_col_labels.into_vec());
    }
    DataFrame::from_parts(
        columns,
        row_labels.unwrap_or_default(),
        Labels::new(col_labels),
    )
}

/// Split `len` items into contiguous `(start, end)` ranges of at most `chunk` items.
fn split_ranges(len: usize, chunk: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return vec![(0, 0)];
    }
    let mut ranges = Vec::with_capacity(len.div_ceil(chunk));
    let mut start = 0;
    while start < len {
        let end = (start + chunk).min(len);
        ranges.push((start, end));
        start = end;
    }
    ranges
}

/// Re-derive global row labels for a grid whose bands were replaced by operator output:
/// positional labels offset by each band's starting position.
pub fn positional_labels(total: usize) -> Labels {
    Labels::positional(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::cell::cell;

    fn frame(rows: usize, cols: usize) -> DataFrame {
        let columns: Vec<Vec<df_types::cell::Cell>> = (0..cols)
            .map(|j| (0..rows).map(|i| cell((i * cols + j) as i64)).collect())
            .collect();
        let labels: Vec<String> = (0..cols).map(|j| format!("c{j}")).collect();
        DataFrame::from_columns(labels, columns).unwrap()
    }

    #[test]
    fn split_ranges_covers_everything() {
        assert_eq!(split_ranges(10, 4), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(split_ranges(4, 4), vec![(0, 4)]);
        assert_eq!(split_ranges(0, 4), vec![(0, 0)]);
    }

    #[test]
    fn row_column_and_block_schemes_produce_expected_grids() {
        let df = frame(100, 8);
        let config = PartitionConfig {
            target_rows: 30,
            target_cols: 3,
        };
        let rows = PartitionGrid::from_dataframe(&df, PartitionScheme::Row, config).unwrap();
        assert_eq!(rows.n_row_bands(), 4);
        assert_eq!(rows.n_col_bands(), 1);
        let cols = PartitionGrid::from_dataframe(&df, PartitionScheme::Column, config).unwrap();
        assert_eq!(cols.n_row_bands(), 1);
        assert_eq!(cols.n_col_bands(), 3);
        let blocks = PartitionGrid::from_dataframe(&df, PartitionScheme::Block, config).unwrap();
        assert_eq!(blocks.n_partitions(), 12);
        assert_eq!(blocks.shape(), (100, 8));
        assert_eq!(blocks.stored_partitions(), 0);
    }

    #[test]
    fn assemble_round_trips_the_original_frame() {
        let df = frame(57, 5)
            .with_row_labels((0..57).map(|i| format!("r{i}")).collect::<Vec<_>>())
            .unwrap();
        for scheme in [
            PartitionScheme::Row,
            PartitionScheme::Column,
            PartitionScheme::Block,
        ] {
            let grid = PartitionGrid::from_dataframe(
                &df,
                scheme,
                PartitionConfig {
                    target_rows: 10,
                    target_cols: 2,
                },
            )
            .unwrap();
            let back = grid.assemble().unwrap();
            assert!(back.same_data(&df), "scheme {scheme:?}");
        }
    }

    #[test]
    fn stored_grids_round_trip_through_a_tight_store() {
        // A store whose budget is a quarter of the frame forces spilling during
        // partitioning; the assembled result must still be identical and the spill
        // directory must drain as consumed handles free their entries.
        let df = frame(80, 4)
            .with_row_labels((0..80).map(|i| format!("r{i}")).collect::<Vec<_>>())
            .unwrap();
        let store = Arc::new(SpillStore::new(df.approx_size_bytes() / 4).unwrap());
        for scheme in [
            PartitionScheme::Row,
            PartitionScheme::Column,
            PartitionScheme::Block,
        ] {
            let grid = PartitionGrid::from_dataframe_in(
                &df,
                scheme,
                PartitionConfig {
                    target_rows: 10,
                    target_cols: 2,
                },
                Some(&store),
            )
            .unwrap();
            assert_eq!(grid.stored_partitions(), grid.n_partitions());
            assert_eq!(grid.shape(), (80, 4));
            // Non-consuming assembly keeps the entries alive…
            assert!(grid.assemble().unwrap().same_data(&df), "scheme {scheme:?}");
            // …while consuming assembly frees them.
            assert!(grid.into_dataframe().unwrap().same_data(&df));
        }
        let stats = store.stats();
        assert!(stats.spill_outs > 0, "tight budget must have spilled");
        assert_eq!(stats.in_memory + stats.spilled, 0, "all entries freed");
    }

    #[test]
    fn metadata_transpose_defers_block_work() {
        let df = frame(40, 6);
        let grid = PartitionGrid::from_dataframe(
            &df,
            PartitionScheme::Block,
            PartitionConfig {
                target_rows: 10,
                target_cols: 2,
            },
        )
        .unwrap();
        let transposed = grid.transpose();
        assert_eq!(transposed.shape(), (6, 40));
        assert_eq!(transposed.deferred_transposes(), transposed.n_partitions());
        // The assembled result equals a real transpose.
        let expected = df_core::ops::reshape::transpose(&df).unwrap();
        assert!(transposed.assemble().unwrap().same_data(&expected));
        // Double metadata transpose returns to the original orientation lazily too.
        let back = transposed.transpose();
        assert_eq!(back.deferred_transposes(), 0);
        assert!(back.assemble().unwrap().same_data(&df));
    }

    #[test]
    fn transpose_of_a_stored_grid_is_metadata_only() {
        let df = frame(30, 4);
        let store = Arc::new(SpillStore::new(1).unwrap()); // spill everything
        let grid = PartitionGrid::from_dataframe_in(
            &df,
            PartitionScheme::Block,
            PartitionConfig {
                target_rows: 10,
                target_cols: 2,
            },
            Some(&store),
        )
        .unwrap();
        let loads_before = store.stats().load_backs;
        let transposed = grid.transpose();
        // No block was loaded back to transpose the grid.
        assert_eq!(store.stats().load_backs, loads_before);
        let expected = df_core::ops::reshape::transpose(&df).unwrap();
        assert!(transposed.assemble().unwrap().same_data(&expected));
    }

    #[test]
    fn par_bands_and_map_bands_follow_the_band_lifecycle() {
        let df = frame(60, 3);
        let store = Arc::new(SpillStore::new(1).unwrap());
        let executor = ParallelExecutor::new(2);
        let grid = PartitionGrid::from_dataframe_in(
            &df,
            PartitionScheme::Row,
            PartitionConfig {
                target_rows: 20,
                target_cols: 8,
            },
            Some(&store),
        )
        .unwrap();
        let counts = grid.band_row_counts();
        assert_eq!(counts, vec![20, 20, 20]);
        let mapped = grid
            .clone()
            .map_bands(&executor, Some(&store), |_, band| Ok(band.head(5)))
            .unwrap();
        assert_eq!(mapped.shape(), (15, 3));
        assert_eq!(mapped.stored_partitions(), 3);
        let heads = mapped.into_row_bands().unwrap();
        assert!(heads.iter().all(|b| b.n_rows() == 5));
        // par_bands over the original grid still sees every band.
        let sizes = grid
            .par_bands(&executor, |i, band| Ok((i, band.n_rows())))
            .unwrap();
        assert_eq!(sizes, vec![(0, 20), (1, 20), (2, 20)]);
    }

    #[test]
    fn prefix_touches_only_leading_bands() {
        let df = frame(100, 3);
        let grid = PartitionGrid::from_dataframe(
            &df,
            PartitionScheme::Row,
            PartitionConfig {
                target_rows: 10,
                target_cols: 8,
            },
        )
        .unwrap();
        let head = grid.prefix(15).unwrap();
        assert_eq!(head.shape(), (15, 3));
        assert!(head.same_data(&df.head(15)));
        let all = grid.prefix(1000).unwrap();
        assert_eq!(all.shape(), (100, 3));
    }

    #[test]
    fn suffix_touches_only_trailing_bands() {
        let df = frame(100, 3)
            .with_row_labels((0..100).map(|i| format!("r{i}")).collect::<Vec<_>>())
            .unwrap();
        let grid = PartitionGrid::from_dataframe(
            &df,
            PartitionScheme::Row,
            PartitionConfig {
                target_rows: 10,
                target_cols: 8,
            },
        )
        .unwrap();
        let tail = grid.suffix(15).unwrap();
        assert_eq!(tail.shape(), (15, 3));
        assert!(tail.same_data(&df.tail(15)));
        let all = grid.suffix(1000).unwrap();
        assert!(all.same_data(&df));
        assert_eq!(grid.suffix(0).unwrap().n_rows(), 0);
        // Block scheme exercises the hstack path inside suffix.
        let blocks = PartitionGrid::from_dataframe(
            &df,
            PartitionScheme::Block,
            PartitionConfig {
                target_rows: 30,
                target_cols: 2,
            },
        )
        .unwrap();
        assert!(blocks.suffix(37).unwrap().same_data(&df.tail(37)));
    }

    #[test]
    fn hstack_all_matches_the_pairwise_fold() {
        let a = frame(5, 2);
        let b = frame(5, 1);
        let c = frame(5, 3);
        let folded = hstack(&hstack(&a, &b).unwrap(), &c).unwrap();
        let multi = hstack_all(vec![a.clone(), b.clone(), c]).unwrap();
        assert!(multi.same_data(&folded));
        assert!(hstack_all(vec![]).unwrap().same_data(&DataFrame::empty()));
        assert!(hstack_all(vec![a.clone()]).unwrap().same_data(&a));
        assert!(hstack_all(vec![a, frame(4, 1)]).is_err());
    }

    #[test]
    fn hstack_validates_row_counts() {
        let a = frame(5, 2);
        let b = frame(5, 1);
        let stacked = hstack(&a, &b).unwrap();
        assert_eq!(stacked.shape(), (5, 3));
        let c = frame(4, 1);
        assert!(hstack(&a, &c).is_err());
    }

    #[test]
    fn single_and_row_band_constructors() {
        let df = frame(12, 2);
        let single = PartitionGrid::single(df.clone());
        assert_eq!(single.n_partitions(), 1);
        assert!(single.assemble().unwrap().same_data(&df));
        let bands = PartitionGrid::from_row_bands(vec![df.head(6), df.tail(6)]);
        assert_eq!(bands.n_row_bands(), 2);
        assert_eq!(bands.shape(), (12, 2));
        assert_eq!(bands.blocks()[1][0].row_offset, 6);
        let store = Arc::new(SpillStore::unbounded().unwrap());
        let stored =
            PartitionGrid::from_row_bands_in(vec![df.head(6), df.tail(6)], Some(&store)).unwrap();
        assert_eq!(stored.stored_partitions(), 2);
        assert!(stored.into_dataframe().unwrap().same_data(&df));
    }

    #[test]
    fn columnar_partitions_round_trip_with_and_without_a_store() {
        let mut df = frame(24, 3);
        df.columns_mut()[1].declare_domain(Domain::Int);
        let block = ColumnBlock::from_frame(&df);

        // Resident columnar handle: shape, labels and domains answer in place…
        let resident = Partition::new_columnar_in(block.clone(), 0, 0, None).unwrap();
        assert_eq!((resident.n_rows(), resident.n_cols()), (24, 3));
        assert_eq!(
            resident.col_domains().unwrap()[1],
            Some(Domain::Int),
            "declared domain survives the columnar check-in"
        );
        assert!(resident.materialize().unwrap().same_data(&df));

        // …and a tight store spills the typed buffers, not a decoded frame.
        let store = Arc::new(SpillStore::new(1).unwrap());
        let stored = Partition::new_columnar_in(block, 0, 0, Some(&store)).unwrap();
        assert_eq!(store.stats().spilled, 1);
        let loads_before = store.stats().load_backs;
        assert_eq!((stored.n_rows(), stored.n_cols()), (24, 3));
        assert_eq!(stored.col_domains().unwrap()[1], Some(Domain::Int));
        assert_eq!(
            store.stats().load_backs,
            loads_before,
            "metadata queries must not load spilled columns"
        );
        assert!(stored.into_materialized().unwrap().same_data(&df));
    }

    #[test]
    fn spilled_grid_schema_answers_with_zero_load_backs() {
        let mut df = frame(40, 2);
        df.columns_mut()[0].declare_domain(Domain::Int);
        let store = Arc::new(SpillStore::new(1).unwrap()); // spill everything
        let head = ColumnBlock::from_frame(&df.head(20));
        let tail = ColumnBlock::from_frame(&df.tail(20));
        let parts = vec![
            Partition::new_columnar_in(head, 0, 0, Some(&store)).unwrap(),
            Partition::new_columnar_in(tail, 20, 0, Some(&store)).unwrap(),
        ];
        let grid = PartitionGrid::from_band_partitions(parts);
        assert_eq!(grid.stored_partitions(), 2);
        let loads_before = store.stats().load_backs;
        let schema = grid.schema().expect("row-banded grids always answer");
        assert_eq!(
            store.stats().load_backs,
            loads_before,
            "schema() is metadata-only even on a fully spilled grid"
        );
        assert_eq!(schema.len(), 2);
        assert_eq!(schema[0].0, cell("c0"));
        assert_eq!(schema[0].1, Some(Domain::Int));
        assert_eq!(schema[1].0, cell("c1"));
        // A deferred transpose hides the logical columns: schema declines.
        assert!(grid.transpose().schema().is_none());
    }

    #[test]
    fn scan_rooted_grid_schema_survives_deferred_transpose() {
        let mut df = frame(12, 2);
        df.columns_mut()[0].declare_domain(Domain::Int);
        df.columns_mut()[1].declare_domain(Domain::Int);
        let store = Arc::new(SpillStore::new(1).unwrap()); // spill everything
        let scan_schema: df_core::handle::FrameSchema = vec![
            (cell("c0"), Some(Domain::Int)),
            (cell("c1"), Some(Domain::Int)),
        ];
        let parts = vec![
            Partition::new_columnar_in(ColumnBlock::from_frame(&df.head(6)), 0, 0, Some(&store))
                .unwrap(),
            Partition::new_columnar_in(ColumnBlock::from_frame(&df.tail(6)), 6, 0, Some(&store))
                .unwrap(),
        ];
        let grid =
            PartitionGrid::from_band_partitions(parts).with_scan_schema(scan_schema.clone(), true);
        assert_eq!(grid.schema(), Some(scan_schema.clone()));
        // Odd transpose parity on a sequential (predicate-free) scan: the logical
        // columns are the scan's global row labels 0..n, so schema() still answers.
        let flipped = grid.transpose();
        let loads_before = store.stats().load_backs;
        let schema = flipped
            .schema()
            .expect("scan-rooted grids answer through a deferred transpose");
        assert_eq!(store.stats().load_backs, loads_before, "metadata-only");
        assert_eq!(schema.len(), 12);
        assert_eq!(schema[0].0, cell(0));
        assert_eq!(schema[11].0, cell(11));
        assert!(schema.iter().all(|(_, domain)| domain.is_none()));
        // Even parity again: back to the scan's own schema.
        assert_eq!(flipped.transpose().schema(), Some(scan_schema.clone()));
        // A filtered scan's surviving row labels are not statically known, so odd
        // parity still declines.
        let df2 = frame(12, 2);
        let parts2 =
            vec![
                Partition::new_columnar_in(ColumnBlock::from_frame(&df2), 0, 0, Some(&store))
                    .unwrap(),
            ];
        let filtered =
            PartitionGrid::from_band_partitions(parts2).with_scan_schema(scan_schema, false);
        assert!(filtered.transpose().schema().is_none());
    }

    #[test]
    fn empty_frames_partition_cleanly() {
        let empty = DataFrame::from_rows(vec!["a", "b"], vec![]).unwrap();
        let grid = PartitionGrid::from_dataframe(
            &empty,
            PartitionScheme::Block,
            PartitionConfig::default(),
        )
        .unwrap();
        assert_eq!(grid.shape(), (0, 2));
        assert_eq!(grid.assemble().unwrap().shape(), (0, 2));
    }
}
