//! # df-engine
//!
//! The MODIN-like scalable dataframe engine of paper §3, rebuilt in Rust:
//!
//! * [`partition`] — row / column / block partitioning of dataframes and the
//!   metadata-only TRANSPOSE (paper §3.1).
//! * [`shuffle`] — hash/range exchanges and the partition-parallel JOIN, SORT,
//!   DROP_DUPLICATES and DIFFERENCE kernels built on them (paper §3.1's expensive
//!   operators).
//! * [`executor`] — the task-parallel execution layer (the paper's Ray/Dask slot),
//!   here an in-process scoped thread pool.
//! * [`ingest`] — partition-parallel, budget-aware CSV ingest: files are parsed
//!   chunk-by-chunk on the worker pool straight into a spill-backed partition grid,
//!   with cross-band schema reconciliation (the paper's parallel-I/O headline).
//! * [`optimizer`] — logical rewrite rules: transpose cancellation, selection fusion,
//!   limit push-down, schema-induction deferral accounting and the Figure 8 pivot-axis
//!   choice (paper §5–6).
//! * [`engine`] — [`engine::ModinEngine`], the partitioned parallel implementation of
//!   the dataframe algebra behind the shared [`df_core::engine::Engine`] trait.
//! * [`session`] — eager / lazy / opportunistic evaluation, query futures, prefix
//!   (head/tail) prioritised inspection and the materialisation/reuse cache (paper §6).
//! * [`cache`] — the shareable, budget-accounted result cache behind the session:
//!   single-flight fingerprint execution, LRU eviction under a byte budget, and
//!   per-tenant quotas/attribution for the multi-tenant service (`df-service`).

// The engine sits above the fault-tolerant storage layer: every storage or worker
// fault must stay a typed `DfError` on its way through, so production code may not
// reintroduce unwrap/expect panic sites. Tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod backend;
pub mod cache;
pub mod engine;
pub mod executor;
pub mod ingest;
pub mod optimizer;
pub mod partition;
pub mod session;
pub mod shuffle;

pub use backend::{BackendHealth, BandTask, ExecBackend, ProcBackend, ThreadsBackend};
pub use cache::{CacheStats, ResultCache, TenantCacheStats};
pub use df_storage::spill::{SpillStats, SpillStore};
pub use engine::{GridResult, ModinConfig, ModinEngine};
pub use executor::{default_threads, ParallelExecutor};
pub use ingest::IngestStats;
pub use optimizer::{choose_pivot_plan, optimize, OptimizerConfig, PivotPlan, RewriteStats};
pub use partition::{Partition, PartitionConfig, PartitionGrid, PartitionHandle, PartitionScheme};
pub use session::{EvalMode, QueryFuture, QuerySession, SessionStats, StatementGate};
pub use shuffle::{ShuffleKey, ShuffleOptions};
