//! Evaluation modes, query futures and the materialisation/reuse cache.
//!
//! Paper §6.1.1 contrasts three ways a dataframe system can schedule the statements a
//! user types one at a time:
//!
//! * **eager** — pandas' behaviour: evaluate each statement fully before returning
//!   control (users wait even for results they never inspect);
//! * **lazy** — defer everything until a result is explicitly requested (better plans,
//!   but bugs surface late);
//! * **opportunistic** — return control immediately *and* start computing in the
//!   background during the user's think time, prioritising whatever the user actually
//!   asks to see.
//!
//! [`QuerySession`] implements all three over any [`Engine`], together with the
//! §6.2.2 materialisation cache. Both the cache and the background futures hold
//! [`FrameHandle`]s, not resident dataframes: for the scalable engine a cached result
//! is a partition grid whose blocks live under the session's memory budget (spilling
//! to disk like any other partition), so remembering results across statements does
//! not defeat the out-of-core store. Statements revisited during trial-and-error
//! exploration are served from the cache by expression fingerprint; callers that
//! chain statements pass precomputed fingerprints through the `*_keyed` entry points
//! so one statement's (potentially deep) plan is serialised once, not once per
//! submit/collect/inspect call.
//!
//! Since PR 9 the session is also the unit of *tenancy*: its cache is an
//! [`Arc<ResultCache>`](crate::cache::ResultCache) that several sessions may share
//! (identical fingerprints from different tenants then execute once, single-flight),
//! its hot counters are MRV-style striped atomics so concurrent tenants do not
//! serialize on stats bumps, and every engine execution passes through an optional
//! [`StatementGate`] — the admission-control hook `df-service` implements with a
//! bounded, tenant-fair run queue. A standalone session (the `new` constructor) has
//! a private cache and no gate, and behaves exactly as before.

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use df_types::error::{DfError, DfResult};
use df_types::striped::StripedU64;

use df_core::algebra::AlgebraExpr;
use df_core::dataframe::DataFrame;
use df_core::engine::Engine;
use df_core::handle::FrameHandle;

use crate::cache::{CacheStats, Lookup, ResultCache};

/// How statements are scheduled (paper §6.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvalMode {
    /// Evaluate fully as soon as a statement is issued.
    Eager,
    /// Defer evaluation until the result is explicitly requested.
    Lazy,
    /// Return immediately and compute in the background during think time.
    Opportunistic,
}

/// Counters describing a session's behaviour, used by the §6 ablation benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Statements submitted.
    pub statements: u64,
    /// Full executions performed by the engine.
    pub executions: u64,
    /// Results served from the materialisation cache.
    pub cache_hits: u64,
    /// Background (opportunistic) executions started.
    pub background_started: u64,
    /// Background results that were ready by the time they were requested.
    pub background_ready_on_request: u64,
    /// Submit-time errors recorded (rather than silently discarded) by API layers
    /// that cannot propagate them from an infallible builder method. The error itself
    /// is retrievable once via [`QuerySession::take_last_submit_error`] and will
    /// surface again at the next materialisation point of the same statement.
    pub submit_errors: u64,
    /// Corruption recoveries: a cached result's spilled partition failed its
    /// checksum on load-back, was quarantined (evicted), and the statement was
    /// recomputed from its logical plan — the lineage record.
    pub recoveries: u64,
    /// Scan chunks proven row-free by their min/max statistics and never parsed
    /// (mirrors the engine's pushdown counters; zero for engines without scans).
    pub chunks_skipped: u64,
    /// File columns scans never materialised thanks to pushed projections.
    pub columns_pruned: u64,
    /// Predicates the optimizer folded into scan leaves.
    pub predicates_pushed: u64,
    /// Projections the optimizer folded into scan leaves.
    pub projections_pushed: u64,
    /// Joins that broadcast their build side instead of shuffling both inputs.
    pub joins_broadcast: u64,
    /// Joins that hash-shuffled both inputs.
    pub joins_shuffled: u64,
    /// Cache entries evicted by byte-budget or tenant-quota pressure (mirrors the
    /// result cache's counter; explicit `evict`/`clear_cache` calls don't count).
    pub evictions: u64,
}

/// The session's hot counters, shared behind an `Arc` and split MRV-style over
/// striped atomic cells ([`StripedU64`]): tenant threads bumping `statements` or
/// `cache_hits` concurrently land on different cache lines instead of serializing
/// on one `Mutex<SessionStats>`. Merged into the public [`SessionStats`] snapshot
/// on read.
#[derive(Default)]
struct SharedSessionStats {
    statements: StripedU64,
    executions: StripedU64,
    cache_hits: StripedU64,
    background_started: StripedU64,
    background_ready_on_request: StripedU64,
    submit_errors: StripedU64,
    recoveries: StripedU64,
}

impl SharedSessionStats {
    fn snapshot(&self) -> SessionStats {
        SessionStats {
            statements: self.statements.get(),
            executions: self.executions.get(),
            cache_hits: self.cache_hits.get(),
            background_started: self.background_started.get(),
            background_ready_on_request: self.background_ready_on_request.get(),
            submit_errors: self.submit_errors.get(),
            recoveries: self.recoveries.get(),
            ..SessionStats::default()
        }
    }
}

/// Admission-control hook applied around every engine execution this session
/// performs (foreground, background, and ingest alike). `df-service` implements it
/// with a bounded run queue that is fair *across tenants*; a standalone session has
/// none and executes immediately.
///
/// Contract: a successful [`StatementGate::admit`] grants one execution slot that
/// the session releases via [`StatementGate::release`] when the execution finishes
/// (the session pairs the calls RAII-style, so a panicking engine still releases).
/// Refusals surface typed — [`DfError::Admission`] when turned away at the door
/// (queue full, service draining), [`DfError::Cancelled`] when a queue wait times
/// out. Cache hits and single-flight waits do not pass through the gate: served
/// results consume no execution slot, which is also what makes waiting on another
/// tenant's pending execution deadlock-free.
pub trait StatementGate: Send + Sync {
    /// Block until an execution slot is granted (or refuse typed).
    fn admit(&self, tenant: Option<&str>) -> DfResult<()>;
    /// Return the slot granted by the matching [`StatementGate::admit`].
    fn release(&self);
}

/// RAII pairing of `admit`/`release` around one engine execution.
struct GatePermit {
    gate: Option<Arc<dyn StatementGate>>,
}

impl GatePermit {
    fn acquire(
        gate: &Option<Arc<dyn StatementGate>>,
        tenant: Option<&str>,
    ) -> DfResult<GatePermit> {
        match gate {
            Some(g) => {
                g.admit(tenant)?;
                Ok(GatePermit {
                    gate: Some(Arc::clone(g)),
                })
            }
            None => Ok(GatePermit { gate: None }),
        }
    }
}

impl Drop for GatePermit {
    fn drop(&mut self) {
        if let Some(gate) = &self.gate {
            gate.release();
        }
    }
}

/// A handle to a result that may still be computing in the background.
pub struct QueryFuture {
    fingerprint: String,
    /// Pins the pointer identities the fingerprint key is built from (see
    /// [`CachedResult`]) for as long as the future is pending.
    #[allow(dead_code)]
    pins: Vec<FrameHandle>,
    receiver: Option<Receiver<DfResult<FrameHandle>>>,
    handle: Option<JoinHandle<()>>,
}

impl QueryFuture {
    /// True if the background computation has finished (successfully or not).
    pub fn is_ready(&self) -> bool {
        self.handle
            .as_ref()
            .map(|h| h.is_finished())
            .unwrap_or(true)
    }

    /// The fingerprint of the expression this future computes.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    fn wait(mut self) -> DfResult<FrameHandle> {
        let receiver = self
            .receiver
            .take()
            .ok_or_else(|| DfError::internal("future already consumed"))?;
        let result = receiver.recv().map_err(|_| {
            // The sender only drops without sending if the worker thread died.
            DfError::WorkerPanic("background worker died before sending its result".to_string())
        })?;
        if let Some(handle) = self.handle.take() {
            handle.join().ok();
        }
        result
    }
}

/// A stateful analysis session in front of an [`Engine`].
pub struct QuerySession {
    engine: Arc<dyn Engine>,
    mode: EvalMode,
    cache: Arc<ResultCache>,
    pending: Mutex<HashMap<String, QueryFuture>>,
    stats: Arc<SharedSessionStats>,
    last_submit_error: Mutex<Option<DfError>>,
    cache_enabled: bool,
    /// The tenant this session acts for inside a shared service (`None` for a
    /// standalone session). Used for cache attribution and gate fairness.
    tenant: Option<String>,
    gate: Option<Arc<dyn StatementGate>>,
}

impl QuerySession {
    /// A session over `engine` using the given evaluation mode, with a private
    /// unbounded cache and no admission gate (the single-user configuration).
    pub fn new(engine: Arc<dyn Engine>, mode: EvalMode) -> Self {
        QuerySession::with_shared_state(engine, mode, Arc::new(ResultCache::new()), None, None)
    }

    /// A session whose private cache is bounded to `budget` bytes: entries are
    /// costed via [`FrameHandle::approx_size_bytes`] and evicted LRU-first past
    /// the budget (counted in [`SessionStats::evictions`]).
    pub fn with_cache_budget(engine: Arc<dyn Engine>, mode: EvalMode, budget: usize) -> Self {
        QuerySession::with_shared_state(
            engine,
            mode,
            Arc::new(ResultCache::with_budget(Some(budget))),
            None,
            None,
        )
    }

    /// The multi-tenant constructor: a session over a (typically shared) engine
    /// whose result cache is shared with other sessions, whose executions pass
    /// through `gate`, and whose cache activity is attributed to `tenant`.
    /// `df-service` builds one of these per [`TenantSession`]; each keeps its own
    /// stats counters, so per-tenant statement/hit/execution numbers come free.
    ///
    /// [`TenantSession`]: https://docs.rs/df-service
    pub fn with_shared_state(
        engine: Arc<dyn Engine>,
        mode: EvalMode,
        cache: Arc<ResultCache>,
        tenant: Option<String>,
        gate: Option<Arc<dyn StatementGate>>,
    ) -> Self {
        QuerySession {
            engine,
            mode,
            cache,
            pending: Mutex::new(HashMap::new()),
            stats: Arc::new(SharedSessionStats::default()),
            last_submit_error: Mutex::new(None),
            cache_enabled: true,
            tenant,
            gate,
        }
    }

    /// Disable the materialisation cache (ablation arm).
    pub fn without_cache(mut self) -> Self {
        self.cache_enabled = false;
        self
    }

    /// The evaluation mode this session uses.
    pub fn mode(&self) -> EvalMode {
        self.mode
    }

    /// The engine behind this session.
    pub fn engine(&self) -> &Arc<dyn Engine> {
        &self.engine
    }

    /// The result cache behind this session — share it with another session (via
    /// [`QuerySession::with_shared_state`]) and identical fingerprints across the
    /// two execute once.
    pub fn shared_cache(&self) -> Arc<ResultCache> {
        Arc::clone(&self.cache)
    }

    /// The tenant label this session attributes its cache activity to.
    pub fn tenant(&self) -> Option<&str> {
        self.tenant.as_deref()
    }

    /// Counters of the result cache behind this session (global across every
    /// session sharing it, with per-tenant attribution inside).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Counters accumulated so far. The pushdown fields are read live from the
    /// engine's own counters, so they reflect every execution this session ran
    /// (including background futures that have already finished); `evictions`
    /// mirrors the result cache's counter the same way. Both are *shared-state*
    /// reads: behind a shared engine or cache they count every tenant's activity,
    /// while the remaining fields are this session's own.
    pub fn stats(&self) -> SessionStats {
        let mut stats = self.stats.snapshot();
        let pushdown = self.engine.pushdown_stats();
        stats.chunks_skipped = pushdown.chunks_skipped;
        stats.columns_pruned = pushdown.columns_pruned;
        stats.predicates_pushed = pushdown.predicates_pushed;
        stats.projections_pushed = pushdown.projections_pushed;
        stats.joins_broadcast = pushdown.joins_broadcast;
        stats.joins_shuffled = pushdown.joins_shuffled;
        stats.evictions = self.cache.stats().evictions;
        stats
    }

    /// Render the engine's optimizer report for a statement — logical and optimized
    /// plans with per-node estimates, which pushdowns fired, and the planned join
    /// strategies — plus one session line saying whether this statement's result is
    /// already cached under `key`. Purely observational: nothing executes, no
    /// statistics counters move.
    pub fn explain_keyed(&self, expr: &AlgebraExpr, key: &str) -> String {
        let mut out = self.engine.explain(expr);
        let status = if self.handle_for(key).is_some() {
            "result cached (next fetch is a cache hit)"
        } else {
            "result not cached (next fetch executes)"
        };
        out.push_str("== session ==\n");
        out.push_str(status);
        out.push('\n');
        out
    }

    /// [`QuerySession::explain_keyed`] keyed by the expression's own fingerprint.
    pub fn explain(&self, expr: &AlgebraExpr) -> String {
        self.explain_keyed(expr, &expr.fingerprint())
    }

    /// Submit a statement. Under eager evaluation this blocks and computes a handle
    /// (or serves a cache hit for a re-submitted fingerprint); under lazy evaluation
    /// it records nothing (the expression itself is the pending work); under
    /// opportunistic evaluation it kicks off a background computation keyed by the
    /// expression fingerprint.
    pub fn submit(&self, expr: &AlgebraExpr) -> DfResult<()> {
        self.submit_keyed(expr, &expr.fingerprint(), None)
    }

    /// Record a statement without a plan — what a lazy submit amounts to. API layers
    /// use this to skip building (and fingerprinting) an execution plan the lazy
    /// scheduler would discard anyway.
    pub fn note_statement(&self) {
        self.stats.statements.incr();
    }

    /// [`QuerySession::submit`] with a precomputed fingerprint key (so callers that
    /// already memoised the fingerprint do not re-serialise the plan). When `key` is
    /// the fingerprint of a *different* expression than `expr` (an API layer keying a
    /// handle-rebased execution plan by its statement's logical fingerprint), pass
    /// that expression as `key_source` so the cache entry pins the allocations the
    /// key's identity pointers refer to.
    pub fn submit_keyed(
        &self,
        expr: &AlgebraExpr,
        key: &str,
        key_source: Option<&AlgebraExpr>,
    ) -> DfResult<()> {
        self.stats.statements.incr();
        match self.mode {
            EvalMode::Eager => {
                // Serves a re-submitted fingerprint from the cache, else executes
                // and remembers the handle.
                self.handle_keyed(expr, key, key_source).map(|_| ())
            }
            EvalMode::Lazy => Ok(()),
            EvalMode::Opportunistic => {
                self.spawn_background(expr, key, key_source);
                Ok(())
            }
        }
    }

    /// Record a submit-time error an infallible API layer could not propagate: it is
    /// counted in [`SessionStats::submit_errors`], kept for
    /// [`QuerySession::take_last_submit_error`], and will surface again when the
    /// statement reaches a materialisation point.
    pub fn record_submit_error(&self, err: DfError) {
        self.stats.submit_errors.incr();
        *self.last_submit_error.lock() = Some(err);
    }

    /// The most recent recorded submit error, if any (clears the slot).
    pub fn take_last_submit_error(&self) -> Option<DfError> {
        self.last_submit_error.lock().take()
    }

    /// Execute (or look up) an expression to an engine-owned [`FrameHandle`], using
    /// (in order) the materialisation cache, a background future, or a fresh
    /// execution. This is the statement-boundary entry point: the caller can feed the
    /// returned handle into the next statement's plan via `AlgebraExpr::handle`.
    pub fn handle(&self, expr: &AlgebraExpr) -> DfResult<FrameHandle> {
        self.handle_keyed(expr, &expr.fingerprint(), None)
    }

    /// Clone a cached handle out (counting the hit at the cache level), releasing
    /// the cache lock before the caller does any engine work. Non-blocking: an
    /// in-flight key reports `None` — inspection paths deliberately do not wait
    /// out another caller's pending full execution.
    fn cached_handle(&self, key: &str) -> Option<FrameHandle> {
        if !self.cache_enabled {
            return None;
        }
        self.cache.lookup(key, self.tenant.as_deref())
    }

    /// Run one gated engine execution (admission, when this session has a gate,
    /// then the engine). The permit is held for the execution only — cached
    /// results are served without consuming an execution slot.
    fn execute_gated(&self, expr: &AlgebraExpr) -> DfResult<FrameHandle> {
        let _permit = GatePermit::acquire(&self.gate, self.tenant.as_deref())?;
        self.stats.executions.incr();
        self.engine.execute(expr)
    }

    /// [`QuerySession::handle`] with a precomputed fingerprint key (`key_source` as
    /// in [`QuerySession::submit_keyed`]). Single-flight on a shared cache: a
    /// second session requesting an in-flight fingerprint blocks on the pending
    /// execution and is served its handle, so identical statements from different
    /// tenants execute exactly once.
    pub fn handle_keyed(
        &self,
        expr: &AlgebraExpr,
        key: &str,
        key_source: Option<&AlgebraExpr>,
    ) -> DfResult<FrameHandle> {
        if !self.cache_enabled {
            let pending = self.pending.lock().remove(key);
            if let Some(future) = pending {
                if future.is_ready() {
                    self.stats.background_ready_on_request.incr();
                }
                return future.wait();
            }
            return self.execute_gated(expr);
        }
        match self.cache.begin(key, self.tenant.as_deref()) {
            Lookup::Hit(handle) => {
                self.stats.cache_hits.incr();
                Ok(handle)
            }
            Lookup::Miss(flight) => {
                let pending = self.pending.lock().remove(key);
                if let Some(future) = pending {
                    if future.is_ready() {
                        self.stats.background_ready_on_request.incr();
                    }
                    // On error the flight guard drops: waiters retry, one
                    // re-executes.
                    let handle = future.wait()?;
                    flight.complete(QuerySession::pins_for(expr, key_source), handle.clone())?;
                    return Ok(handle);
                }
                let handle = self.execute_gated(expr)?;
                flight.complete(QuerySession::pins_for(expr, key_source), handle.clone())?;
                Ok(handle)
            }
        }
    }

    /// Serve-or-compute a statement whose cache key is *not* a plan fingerprint —
    /// above all a CSV ingest keyed by `path + options + file identity`. A cached
    /// handle is returned as a cache hit (re-reading an unchanged file never re-scans
    /// it); otherwise `ingest` runs (counted as an execution), and its handle is
    /// remembered under `key` so derived statements rebase onto the partitioned scan
    /// result like onto any other cached handle.
    ///
    /// Identity-stamped keys (mtime/length in the key) go stale wholesale whenever
    /// the underlying file changes: pass the key's identity-free prefix as
    /// `supersedes` and a fresh ingest evicts every other entry sharing it, so a
    /// session that re-reads a regenerated file does not accumulate one pinned
    /// partition grid per superseded version.
    pub fn ingest_keyed(
        &self,
        key: &str,
        supersedes: Option<&str>,
        ingest: impl FnOnce() -> DfResult<FrameHandle>,
    ) -> DfResult<FrameHandle> {
        self.stats.statements.incr();
        if !self.cache_enabled {
            let _permit = GatePermit::acquire(&self.gate, self.tenant.as_deref())?;
            self.stats.executions.incr();
            return ingest();
        }
        // Single-flight like any fingerprinted statement: two tenants reading the
        // same file concurrently scan it once.
        match self.cache.begin(key, self.tenant.as_deref()) {
            Lookup::Hit(handle) => {
                self.stats.cache_hits.incr();
                Ok(handle)
            }
            Lookup::Miss(flight) => {
                let handle = {
                    let _permit = GatePermit::acquire(&self.gate, self.tenant.as_deref())?;
                    self.stats.executions.incr();
                    ingest()?
                };
                if let Some(prefix) = supersedes {
                    // Older versions of the same statement (same path and options,
                    // different file identity) are unreachable now — release the
                    // partitioned results they pin.
                    self.cache.evict_prefix_except(prefix, key);
                }
                // Path-based keys carry no pointer identities, but the entry still
                // records the plan whose leaves it pins — the handle leaf itself.
                let plan = AlgebraExpr::handle(handle.clone());
                flight.complete(QuerySession::pins_for(&plan, None), handle.clone())?;
                Ok(handle)
            }
        }
    }

    /// A non-executing peek: the cached handle for a fingerprint, if one exists. Used
    /// by API layers to rebase a derived statement's plan onto its input's
    /// already-computed handle (no statistics are counted — this is plan
    /// construction, not a user-visible fetch).
    pub fn handle_for(&self, key: &str) -> Option<FrameHandle> {
        if !self.cache_enabled {
            return None;
        }
        self.cache.peek(key)
    }

    /// Materialisation point: fetch the full result of an expression as a dataframe.
    pub fn collect(&self, expr: &AlgebraExpr) -> DfResult<DataFrame> {
        self.collect_keyed(expr, &expr.fingerprint(), None)
    }

    /// [`QuerySession::collect`] with a precomputed fingerprint key (`key_source` as
    /// in [`QuerySession::submit_keyed`]).
    pub fn collect_keyed(
        &self,
        expr: &AlgebraExpr,
        key: &str,
        key_source: Option<&AlgebraExpr>,
    ) -> DfResult<DataFrame> {
        let handle = self.handle_keyed(expr, key, key_source)?;
        let first = self.engine.collect(&handle);
        drop(handle);
        match first {
            Err(err) if err.is_spill_corruption() => {
                self.recover_from_corruption(expr, key, key_source, |s, h| s.engine.collect(h))
            }
            other => other,
        }
    }

    /// Quarantine-and-recompute: a spilled partition of this statement's (possibly
    /// cached) result failed its integrity check, so the poisoned entry is evicted
    /// and the statement re-executed from its logical plan — the lineage the cache
    /// key was derived from. One attempt only: if the recomputed result fails too,
    /// the corruption is upstream of this statement and surfaces typed.
    fn recover_from_corruption<T>(
        &self,
        expr: &AlgebraExpr,
        key: &str,
        key_source: Option<&AlgebraExpr>,
        op: impl Fn(&Self, &FrameHandle) -> DfResult<T>,
    ) -> DfResult<T> {
        self.stats.recoveries.incr();
        self.evict(key);
        let fresh = self.materialize_handle(expr, key, key_source)?;
        op(self, &fresh)
    }

    /// Materialisation point: only the first `k` rows of an expression — the
    /// tabular-view inspection of §6.1.2. Prefers the cache, then a ready background
    /// result, then the engine's prefix-prioritised path (it does *not* wait for an
    /// unfinished background run, because the prefix path is usually faster than
    /// finishing the full result).
    pub fn head(&self, expr: &AlgebraExpr, k: usize) -> DfResult<DataFrame> {
        self.head_keyed(expr, &expr.fingerprint(), None, k)
    }

    /// [`QuerySession::head`] with a precomputed fingerprint key (`key_source` as in
    /// [`QuerySession::submit_keyed`]).
    pub fn head_keyed(
        &self,
        expr: &AlgebraExpr,
        key: &str,
        key_source: Option<&AlgebraExpr>,
        k: usize,
    ) -> DfResult<DataFrame> {
        // Clone the handle out and release the cache lock before touching the
        // engine: materialising a spilled handle can hit the disk, and holding the
        // lock across it would serialise every other session call behind the I/O.
        if let Some(handle) = self.cached_handle(key) {
            self.stats.cache_hits.incr();
            let first = self.engine.head_of(&handle, k);
            drop(handle);
            return match first {
                Err(err) if err.is_spill_corruption() => {
                    self.recover_from_corruption(expr, key, key_source, |s, h| {
                        s.engine.head_of(h, k)
                    })
                }
                other => other,
            };
        }
        if let Some(handle) = self.take_ready_future(key)? {
            self.remember(key, expr, key_source, &handle);
            return self.engine.head_of(&handle, k);
        }
        let _permit = GatePermit::acquire(&self.gate, self.tenant.as_deref())?;
        self.stats.executions.incr();
        self.engine.execute_prefix(expr, k)
    }

    /// Consume the pending background future for `key` if (and only if) it has
    /// already finished — inspection paths never block on an unfinished one, because
    /// the engine's prefix/suffix path is usually faster than finishing the full
    /// result.
    fn take_ready_future(&self, key: &str) -> DfResult<Option<FrameHandle>> {
        let ready = {
            let pending = self.pending.lock();
            pending.get(key).map(|f| f.is_ready()).unwrap_or(false)
        };
        if !ready {
            return Ok(None);
        }
        let Some(future) = self.pending.lock().remove(key) else {
            return Ok(None);
        };
        self.stats.background_ready_on_request.incr();
        future.wait().map(Some)
    }

    /// Materialisation point: only the last `k` rows of an expression.
    pub fn tail(&self, expr: &AlgebraExpr, k: usize) -> DfResult<DataFrame> {
        self.tail_keyed(expr, &expr.fingerprint(), None, k)
    }

    /// [`QuerySession::tail`] with a precomputed fingerprint key (`key_source` as in
    /// [`QuerySession::submit_keyed`]). Like [`QuerySession::head_keyed`], a
    /// *finished* background future is consumed and cached rather than re-executing
    /// the suffix; an unfinished one is not waited for.
    pub fn tail_keyed(
        &self,
        expr: &AlgebraExpr,
        key: &str,
        key_source: Option<&AlgebraExpr>,
        k: usize,
    ) -> DfResult<DataFrame> {
        if let Some(handle) = self.cached_handle(key) {
            self.stats.cache_hits.incr();
            let first = self.engine.tail_of(&handle, k);
            drop(handle);
            return match first {
                Err(err) if err.is_spill_corruption() => {
                    self.recover_from_corruption(expr, key, key_source, |s, h| {
                        s.engine.tail_of(h, k)
                    })
                }
                other => other,
            };
        }
        if let Some(handle) = self.take_ready_future(key)? {
            self.remember(key, expr, key_source, &handle);
            return self.engine.tail_of(&handle, k);
        }
        let _permit = GatePermit::acquire(&self.gate, self.tenant.as_deref())?;
        self.stats.executions.incr();
        self.engine.execute_suffix(expr, k)
    }

    /// Number of results currently held by the materialisation cache.
    pub fn cached_results(&self) -> usize {
        self.cache.len()
    }

    /// Drop every cached handle (models the §6.2.2 eviction discussion in its
    /// simplest form; for the scalable engine this also releases the underlying
    /// partitions' spill-store entries). On a *shared* cache this is a whole-cache
    /// administrative operation — it drops other tenants' entries too; a tenant
    /// releasing only its own retention uses the cache's `evict_tenant`.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Quarantine one cached result: drop its handle (and pins) so the next
    /// materialisation of `key` re-executes instead of trusting poisoned spill
    /// state. Used by the corruption-recovery path and by the pandas layer when
    /// it walks a frame's lineage after a checksum failure.
    pub fn evict(&self, key: &str) {
        self.cache.evict(key);
    }

    /// Record a corruption recovery that happened *outside* the session's own
    /// retry path — e.g. the pandas layer rebuilding a frame from lineage.
    pub fn note_recovery(&self) {
        self.stats.recoveries.incr();
    }

    /// Request cooperative cancellation of whatever statement is currently
    /// executing on the engine's workers. Tasks already running finish their
    /// current partition; queued tasks are abandoned with
    /// [`DfError::Cancelled`]. No-op for engines without a cancel token.
    pub fn cancel(&self) {
        if let Some(token) = self.engine.cancel_token() {
            token.cancel();
        }
    }

    /// Re-arm the engine after a [`QuerySession::cancel`] (or a timeout) so the
    /// session can run further statements.
    pub fn reset_cancel(&self) {
        if let Some(token) = self.engine.cancel_token() {
            token.reset();
        }
    }

    /// Per-statement timeout entry point: run `statement` (any combination of
    /// this session's submit/collect/inspect calls) under a wall-clock deadline.
    /// A watchdog thread fires the engine's cancel token when the deadline
    /// passes; workers then abandon queued tasks at the next task boundary and
    /// the statement surfaces as [`DfError::Cancelled`] describing the timeout.
    /// The token is reset on the way out, so the session stays usable. Engines
    /// without a cancel token run the statement unbounded.
    pub fn with_timeout<T>(
        &self,
        timeout: std::time::Duration,
        statement: impl FnOnce() -> DfResult<T>,
    ) -> DfResult<T> {
        let Some(token) = self.engine.cancel_token() else {
            return statement();
        };
        token.reset();
        let (done_tx, done_rx) = channel::<()>();
        let watchdog_token = token.clone();
        let watchdog = std::thread::spawn(move || {
            // Timeout => fire the token; Disconnected => statement finished first.
            if matches!(
                done_rx.recv_timeout(timeout),
                Err(std::sync::mpsc::RecvTimeoutError::Timeout)
            ) {
                watchdog_token.cancel();
            }
        });
        let result = statement();
        drop(done_tx);
        let _ = watchdog.join();
        let timed_out = token.is_cancelled();
        token.reset();
        match result {
            Err(err) if err.is_cancelled() && timed_out => Err(DfError::Cancelled(format!(
                "statement exceeded its {timeout:?} timeout"
            ))),
            other => other,
        }
    }

    /// Convenience wrapper: [`QuerySession::collect`] under a wall-clock timeout.
    pub fn collect_timeout(
        &self,
        expr: &AlgebraExpr,
        timeout: std::time::Duration,
    ) -> DfResult<DataFrame> {
        self.with_timeout(timeout, || self.collect(expr))
    }

    fn materialize_handle(
        &self,
        expr: &AlgebraExpr,
        key: &str,
        key_source: Option<&AlgebraExpr>,
    ) -> DfResult<FrameHandle> {
        if !self.cache_enabled {
            return self.execute_gated(expr);
        }
        match self.cache.begin(key, self.tenant.as_deref()) {
            // Another session can have repopulated the key since the caller
            // evicted it (corruption recovery): its fresh result is as good as
            // one of our own.
            Lookup::Hit(handle) => {
                self.stats.cache_hits.incr();
                Ok(handle)
            }
            Lookup::Miss(flight) => {
                let handle = self.execute_gated(expr)?;
                flight.complete(QuerySession::pins_for(expr, key_source), handle.clone())?;
                Ok(handle)
            }
        }
    }

    /// The leaf allocations whose addresses appear in the entry's fingerprint key:
    /// the executed plan's, plus the key-source plan's when the key was fingerprinted
    /// from a different expression.
    fn pins_for(plan: &AlgebraExpr, key_source: Option<&AlgebraExpr>) -> Vec<FrameHandle> {
        let mut pins = plan.leaf_pins();
        if let Some(source) = key_source {
            pins.extend(source.leaf_pins());
        }
        pins
    }

    fn remember(
        &self,
        key: &str,
        plan: &AlgebraExpr,
        key_source: Option<&AlgebraExpr>,
        handle: &FrameHandle,
    ) {
        if self.cache_enabled {
            // A quota rejection here only means the promoted background result is
            // not retained; the handle itself is already on its way to the caller.
            self.cache
                .insert(
                    key,
                    QuerySession::pins_for(plan, key_source),
                    handle.clone(),
                    self.tenant.as_deref(),
                )
                .ok();
        }
    }

    fn spawn_background(&self, expr: &AlgebraExpr, key: &str, key_source: Option<&AlgebraExpr>) {
        // `contains` covers in-flight keys too: when another session is already
        // producing this fingerprint, a background duplicate would waste the
        // single-flight guarantee.
        if self.cache_enabled && self.cache.contains(key) {
            return;
        }
        if self.pending.lock().contains_key(key) {
            return;
        }
        let engine = Arc::clone(&self.engine);
        let gate = self.gate.clone();
        let tenant = self.tenant.clone();
        let pins = QuerySession::pins_for(expr, key_source);
        let worker_plan = expr.clone();
        let (sender, receiver) = channel();
        self.stats.background_started.incr();
        self.stats.executions.incr();
        let handle = std::thread::spawn(move || {
            // Background work is admission-controlled like foreground work: the
            // permit is acquired inside the worker so submit() stays non-blocking.
            let result = GatePermit::acquire(&gate, tenant.as_deref())
                .and_then(|_permit| engine.execute(&worker_plan));
            sender.send(result).ok();
        });
        self.pending.lock().insert(
            key.to_string(),
            QueryFuture {
                fingerprint: key.to_string(),
                pins,
                receiver: Some(receiver),
                handle: Some(handle),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ModinConfig, ModinEngine};
    use df_core::algebra::{MapFunc, Predicate};
    use df_types::cell::cell;

    fn engine() -> Arc<dyn Engine> {
        Arc::new(ModinEngine::with_config(
            ModinConfig::sequential().with_partition_size(8, 4),
        ))
    }

    fn frame(rows: usize) -> DataFrame {
        DataFrame::from_columns(
            vec!["v", "w"],
            vec![
                (0..rows).map(|i| cell(i as i64)).collect(),
                (0..rows).map(|i| cell((i * 2) as i64)).collect(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn eager_mode_computes_on_submit_and_caches_handles() {
        let session = QuerySession::new(engine(), EvalMode::Eager);
        let expr = AlgebraExpr::literal(frame(30)).map(MapFunc::IsNullMask);
        session.submit(&expr).unwrap();
        assert_eq!(session.stats().executions, 1);
        // What the cache holds is a handle, not a resident dataframe.
        let cached = session.handle_for(&expr.fingerprint()).unwrap();
        assert!(cached.is_partitioned());
        let out = session.collect(&expr).unwrap();
        assert_eq!(out.shape(), (30, 2));
        // Fetches and re-submissions are cache hits, not re-executions.
        session.collect(&expr).unwrap();
        session.submit(&expr).unwrap();
        assert_eq!(session.stats().executions, 1);
        assert_eq!(session.stats().cache_hits, 3);
        assert_eq!(session.stats().statements, 2);
        assert_eq!(session.cached_results(), 1);
    }

    #[test]
    fn lazy_mode_defers_until_collect() {
        let session = QuerySession::new(engine(), EvalMode::Lazy);
        let expr = AlgebraExpr::literal(frame(10)).select(Predicate::True);
        session.submit(&expr).unwrap();
        assert_eq!(session.stats().executions, 0);
        session.collect(&expr).unwrap();
        assert_eq!(session.stats().executions, 1);
    }

    #[test]
    fn opportunistic_mode_computes_in_background() {
        let session = QuerySession::new(engine(), EvalMode::Opportunistic);
        let expr = AlgebraExpr::literal(frame(50)).map(MapFunc::IsNullMask);
        session.submit(&expr).unwrap();
        assert_eq!(session.stats().background_started, 1);
        // Re-submitting the same statement does not spawn a duplicate worker.
        session.submit(&expr).unwrap();
        assert_eq!(session.stats().background_started, 1);
        let out = session.collect(&expr).unwrap();
        assert_eq!(out.shape(), (50, 2));
        // Once collected the result is cached.
        session.collect(&expr).unwrap();
        assert!(session.stats().cache_hits >= 1);
    }

    #[test]
    fn ready_background_futures_serve_tail_without_reexecution() {
        let session = QuerySession::new(engine(), EvalMode::Opportunistic);
        let expr = AlgebraExpr::literal(frame(60)).map(MapFunc::IsNullMask);
        session.submit(&expr).unwrap();
        // The background run over 60 rows finishes in microseconds; give it ample
        // real time so the readiness check below observes a finished future.
        std::thread::sleep(std::time::Duration::from_millis(500));
        let tail = session.tail(&expr, 3).unwrap();
        assert_eq!(tail.shape(), (3, 2));
        let stats = session.stats();
        assert_eq!(
            stats.background_ready_on_request, 1,
            "ready future was not consumed: {stats:?}"
        );
        assert_eq!(
            stats.executions, 1,
            "tail re-executed despite a finished background result: {stats:?}"
        );
        // The promoted handle is cached: the next fetch is a hit.
        session.collect(&expr).unwrap();
        assert_eq!(session.stats().cache_hits, 1);
    }

    #[test]
    fn handles_cross_statement_boundaries_without_reexecution() {
        let session = QuerySession::new(engine(), EvalMode::Eager);
        let first = AlgebraExpr::literal(frame(40)).select(Predicate::True);
        session.submit(&first).unwrap();
        let handle = session.handle(&first).unwrap();
        // Next statement consumes the previous statement's handle as a plan leaf.
        let second = AlgebraExpr::handle(handle).map(MapFunc::IsNullMask);
        session.submit(&second).unwrap();
        let out = session.collect(&second).unwrap();
        assert_eq!(out.shape(), (40, 2));
        assert_eq!(out.cell(0, 0).unwrap(), &cell(false));
        assert_eq!(session.stats().executions, 2);
    }

    #[test]
    fn head_uses_prefix_execution_when_nothing_is_cached() {
        let session = QuerySession::new(engine(), EvalMode::Lazy);
        let expr = AlgebraExpr::literal(frame(100)).map(MapFunc::IsNullMask);
        let head = session.head(&expr, 5).unwrap();
        assert_eq!(head.shape(), (5, 2));
        let tail = session.tail(&expr, 3).unwrap();
        assert_eq!(tail.shape(), (3, 2));
        assert_eq!(tail.cell(2, 0).unwrap(), &cell(false));
    }

    #[test]
    fn opportunistic_sessions_work_over_an_out_of_core_engine() {
        // The spill store is session-scoped and shared (via Arc) with background
        // workers: an opportunistic session over a budgeted engine must produce the
        // same results as an in-memory one, with the store actually engaging.
        let df = frame(300);
        let budget = df.approx_size_bytes() / 4;
        let modin = Arc::new(ModinEngine::with_config(
            ModinConfig::default()
                .with_memory_budget(budget)
                .with_partition_size(16, 4),
        ));
        let session = QuerySession::new(
            Arc::clone(&modin) as Arc<dyn Engine>,
            EvalMode::Opportunistic,
        );
        let expr = AlgebraExpr::literal(df).map(MapFunc::IsNullMask);
        session.submit(&expr).unwrap();
        let out = session.collect(&expr).unwrap();
        assert_eq!(out.shape(), (300, 2));
        let reference = QuerySession::new(engine(), EvalMode::Eager)
            .collect(&expr)
            .unwrap();
        assert!(out.same_data(&reference));
        assert!(
            modin.spill_stats().spill_outs > 0,
            "budgeted engine never spilled: {:?}",
            modin.spill_stats()
        );
    }

    #[test]
    fn cached_handles_stay_budget_accounted_until_evicted() {
        // A cached result over a budgeted engine is held as spilled/stored
        // partitions, not a resident dataframe — and clearing the cache releases its
        // store entries.
        let df = frame(300);
        let budget = df.approx_size_bytes() / 4;
        let modin = Arc::new(ModinEngine::with_config(
            ModinConfig::default()
                .with_memory_budget(budget)
                .with_partition_size(16, 4),
        ));
        let session = QuerySession::new(Arc::clone(&modin) as Arc<dyn Engine>, EvalMode::Eager);
        let expr = AlgebraExpr::literal(df).map(MapFunc::IsNullMask);
        session.submit(&expr).unwrap();
        let stats = modin.spill_stats();
        assert!(
            stats.in_memory + stats.spilled > 0,
            "cached handle holds no partitions: {stats:?}"
        );
        assert!(
            stats.memory_bytes <= budget + stats.max_insert_bytes,
            "cached handle blew the budget: {stats:?}"
        );
        session.clear_cache();
        let drained = modin.spill_stats();
        assert_eq!(
            drained.in_memory + drained.spilled,
            0,
            "evicted cache leaked store entries: {drained:?}"
        );
    }

    #[test]
    fn cache_entries_pin_literal_identities_against_address_reuse() {
        // Fingerprints identify literals by Arc address. If the cache did not keep
        // the keyed plan alive, this loop would routinely allocate a new literal at
        // a just-freed address and hit the previous statement's stale entry. With
        // pinning, every distinct frame executes and returns its own data.
        let session = QuerySession::new(engine(), EvalMode::Eager);
        for i in 0..32u64 {
            let df = DataFrame::from_columns(
                vec!["v"],
                vec![(0..8).map(|j| cell((i * 100 + j) as i64)).collect()],
            )
            .unwrap();
            let expr = AlgebraExpr::literal(df).select(Predicate::True);
            session.submit(&expr).unwrap();
            let out = session.collect(&expr).unwrap();
            assert_eq!(
                out.cell(0, 0).unwrap(),
                &cell((i * 100) as i64),
                "statement {i} was served a stale cached result"
            );
            // The statement (and its literal) drop here; its cache entry must keep
            // the fingerprinted allocation alive.
        }
        assert_eq!(session.stats().executions, 32);
    }

    #[test]
    fn ingest_keyed_caches_and_evicts_superseded_versions() {
        let session = QuerySession::new(engine(), EvalMode::Eager);
        let prefix = "csv@/tmp/x?opts&";
        let v1 = format!("{prefix}mtime=1");
        let first = session
            .ingest_keyed(&v1, Some(prefix), || {
                Ok(FrameHandle::from_dataframe(frame(5)))
            })
            .unwrap();
        // Re-reading the unchanged "file" is a cache hit on the same handle.
        let again = session
            .ingest_keyed(&v1, Some(prefix), || panic!("must serve from cache"))
            .unwrap();
        assert_eq!(first.identity(), again.identity());
        assert_eq!(session.stats().executions, 1);
        assert_eq!(session.stats().cache_hits, 1);
        assert_eq!(session.cached_results(), 1);
        // A new version of the same statement evicts the superseded entry…
        let v2 = format!("{prefix}mtime=2");
        session
            .ingest_keyed(&v2, Some(prefix), || {
                Ok(FrameHandle::from_dataframe(frame(6)))
            })
            .unwrap();
        assert_eq!(session.cached_results(), 1, "superseded version leaked");
        assert!(session.handle_for(&v1).is_none());
        assert!(session.handle_for(&v2).is_some());
        // …while entries under other prefixes survive.
        session
            .ingest_keyed("csv@/tmp/y?opts&mtime=1", Some("csv@/tmp/y?opts&"), || {
                Ok(FrameHandle::from_dataframe(frame(3)))
            })
            .unwrap();
        assert_eq!(session.cached_results(), 2);
        assert!(session.handle_for(&v2).is_some());
    }

    #[test]
    fn bounded_cache_evicts_lru_with_a_counter() {
        // Measure one result's cached footprint, then bound a session to ~2.5 of it.
        let probe = QuerySession::new(engine(), EvalMode::Eager);
        let sample = AlgebraExpr::literal(frame(40)).map(MapFunc::IsNullMask);
        probe.submit(&sample).unwrap();
        let unit = probe
            .handle_for(&sample.fingerprint())
            .unwrap()
            .approx_size_bytes();
        assert!(unit > 0);
        let session =
            QuerySession::with_cache_budget(engine(), EvalMode::Eager, unit * 2 + unit / 2);
        let exprs: Vec<AlgebraExpr> = (0..4)
            .map(|_| AlgebraExpr::literal(frame(40)).map(MapFunc::IsNullMask))
            .collect();
        for expr in &exprs {
            session.submit(expr).unwrap();
        }
        // Same-sized results: two fit, the two oldest were evicted.
        assert_eq!(session.cached_results(), 2);
        assert_eq!(session.stats().evictions, 2);
        assert!(session.handle_for(&exprs[0].fingerprint()).is_none());
        assert!(session.handle_for(&exprs[3].fingerprint()).is_some());
        // An evicted statement recomputes correctly on the next fetch.
        let out = session.collect(&exprs[0]).unwrap();
        assert_eq!(out.shape(), (40, 2));
        assert_eq!(session.stats().executions, 5);
    }

    #[test]
    fn shared_cache_single_flights_identical_fingerprints_across_sessions() {
        let shared_engine = engine();
        let cache = Arc::new(crate::cache::ResultCache::new());
        let expr = Arc::new(AlgebraExpr::literal(frame(80)).map(MapFunc::IsNullMask));
        let sessions: Vec<Arc<QuerySession>> = (0..4)
            .map(|i| {
                Arc::new(QuerySession::with_shared_state(
                    Arc::clone(&shared_engine),
                    EvalMode::Eager,
                    Arc::clone(&cache),
                    Some(format!("tenant-{i}")),
                    None,
                ))
            })
            .collect();
        let reference = expr.as_ref().clone();
        let expected = QuerySession::new(engine(), EvalMode::Eager)
            .collect(&reference)
            .unwrap();
        std::thread::scope(|scope| {
            for session in &sessions {
                let session = Arc::clone(session);
                let expr = Arc::clone(&expr);
                let expected = &expected;
                scope.spawn(move || {
                    let out = session.collect(&expr).unwrap();
                    assert!(out.same_data(expected));
                });
            }
        });
        let total_executions: u64 = sessions.iter().map(|s| s.stats().executions).sum();
        assert_eq!(
            total_executions, 1,
            "identical fingerprints must execute exactly once across sessions"
        );
        let stats = cache.stats();
        assert_eq!(stats.hits, 3, "the three non-producers must hit: {stats:?}");
        assert_eq!(stats.shared_hits, 3, "{stats:?}");
    }

    #[test]
    fn submit_errors_are_recorded_and_retrievable() {
        let session = QuerySession::new(engine(), EvalMode::Eager);
        assert!(session.take_last_submit_error().is_none());
        session.record_submit_error(DfError::column_not_found("missing"));
        assert_eq!(session.stats().submit_errors, 1);
        let err = session.take_last_submit_error().unwrap();
        assert!(matches!(err, DfError::ColumnNotFound(_)));
        // The slot is consumed.
        assert!(session.take_last_submit_error().is_none());
    }

    #[test]
    fn cache_can_be_disabled_and_cleared() {
        let session = QuerySession::new(engine(), EvalMode::Eager).without_cache();
        let expr = AlgebraExpr::literal(frame(10)).select(Predicate::True);
        session.submit(&expr).unwrap();
        session.collect(&expr).unwrap();
        assert_eq!(session.stats().cache_hits, 0);
        assert_eq!(session.cached_results(), 0);
        assert!(session.handle_for(&expr.fingerprint()).is_none());
        let cached = QuerySession::new(engine(), EvalMode::Eager);
        cached.submit(&expr).unwrap();
        assert_eq!(cached.cached_results(), 1);
        cached.clear_cache();
        assert_eq!(cached.cached_results(), 0);
        assert_eq!(cached.mode(), EvalMode::Eager);
        assert!(cached.engine().capabilities().lazy_execution);
    }

    #[test]
    fn corrupted_spill_state_is_quarantined_and_recomputed() {
        let df = frame(200);
        let budget = df.approx_size_bytes() / 4;
        let modin = Arc::new(ModinEngine::with_config(
            ModinConfig::sequential()
                .with_memory_budget(budget)
                .with_partition_size(16, 4),
        ));
        let spill_dir = modin
            .store()
            .expect("budgeted engine")
            .directory()
            .to_path_buf();
        let session = QuerySession::new(modin, EvalMode::Eager);
        let expr = AlgebraExpr::literal(df).map(MapFunc::IsNullMask);
        session.submit(&expr).unwrap();
        // Corrupt every spill file behind the cached result: appended bytes break
        // the v4 length frame, so the next load-back reports SpillCorruption.
        let mut tampered = 0;
        for entry in std::fs::read_dir(&spill_dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_file() {
                let mut content = std::fs::read(&path).unwrap();
                content.extend_from_slice(b"tampered");
                std::fs::write(&path, content).unwrap();
                tampered += 1;
            }
        }
        assert!(
            tampered > 0,
            "budgeted engine should have spilled partitions"
        );
        // collect() quarantines the poisoned entry and recomputes from the plan.
        let out = session.collect(&expr).unwrap();
        assert_eq!(out.shape(), (200, 2));
        assert_eq!(out.cell(0, 0).unwrap(), &cell(false));
        assert_eq!(session.stats().recoveries, 1);
        // The recomputed result is cached again and healthy.
        session.collect(&expr).unwrap();
        assert_eq!(session.stats().recoveries, 1);
    }

    #[test]
    fn stats_merge_pushdown_counters_and_explain_is_observational() {
        let dir = std::env::temp_dir().join(format!("df_session_scan_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scan.csv");
        let mut content = String::from("id,v\n");
        for i in 0..40 {
            content.push_str(&format!("{i},{}\n", i * 2));
        }
        std::fs::write(&path, content).unwrap();
        let session = QuerySession::new(engine(), EvalMode::Lazy);
        let expr = AlgebraExpr::scan_csv(df_core::scan::ScanCsv::new(
            &path,
            df_core::scan::ScanOptions {
                infer_schema: true,
                ..df_core::scan::ScanOptions::default()
            },
            "session-scan",
        ))
        .select(Predicate::ColCmp {
            column: cell("id"),
            op: df_core::algebra::CmpOp::Lt,
            value: cell(4),
        });
        let rendered = session.explain(&expr);
        assert!(rendered.contains("result not cached"), "{rendered}");
        assert!(
            rendered.contains("predicates pushed into scans: 1"),
            "{rendered}"
        );
        assert_eq!(session.stats().executions, 0, "explain must not execute");
        let out = session.collect(&expr).unwrap();
        assert_eq!(out.shape().0, 4);
        let stats = session.stats();
        assert_eq!(stats.predicates_pushed, 1, "{stats:?}");
        assert!(stats.chunks_skipped > 0, "{stats:?}");
        let rendered = session.explain(&expr);
        assert!(rendered.contains("result cached"), "{rendered}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn cancel_fails_statements_typed_and_reset_rearms_the_session() {
        let session = QuerySession::new(engine(), EvalMode::Lazy);
        let expr = AlgebraExpr::literal(frame(64)).map(MapFunc::IsNullMask);
        session.cancel();
        let err = session.collect(&expr).unwrap_err();
        assert!(err.is_cancelled(), "expected a cancelled error, got {err}");
        session.reset_cancel();
        assert_eq!(session.collect(&expr).unwrap().shape(), (64, 2));
    }

    #[test]
    fn with_timeout_cancels_overrunning_statements_and_resets_the_token() {
        let session = QuerySession::new(engine(), EvalMode::Lazy);
        let expr = AlgebraExpr::literal(frame(64)).map(MapFunc::IsNullMask);
        let err = session
            .with_timeout(std::time::Duration::from_millis(5), || {
                // Outlive the deadline before touching the engine, so the watchdog
                // has deterministically fired by the time workers check the token.
                std::thread::sleep(std::time::Duration::from_millis(100));
                session.collect(&expr)
            })
            .unwrap_err();
        assert!(err.is_cancelled(), "expected a timeout error, got {err}");
        assert!(err.to_string().contains("timeout"), "{err}");
        // The token was reset on the way out: the session stays usable.
        let out = session
            .collect_timeout(&expr, std::time::Duration::from_secs(30))
            .unwrap();
        assert_eq!(out.shape(), (64, 2));
    }
}
