//! Evaluation modes, query futures and the materialisation/reuse cache.
//!
//! Paper §6.1.1 contrasts three ways a dataframe system can schedule the statements a
//! user types one at a time:
//!
//! * **eager** — pandas' behaviour: evaluate each statement fully before returning
//!   control (users wait even for results they never inspect);
//! * **lazy** — defer everything until a result is explicitly requested (better plans,
//!   but bugs surface late);
//! * **opportunistic** — return control immediately *and* start computing in the
//!   background during the user's think time, prioritising whatever the user actually
//!   asks to see.
//!
//! [`QuerySession`] implements all three over any [`Engine`], together with the
//! §6.2.2 materialisation cache: results are remembered by expression fingerprint so
//! that statements revisited during trial-and-error exploration do not recompute.

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use df_types::error::{DfError, DfResult};

use df_core::algebra::AlgebraExpr;
use df_core::dataframe::DataFrame;
use df_core::engine::Engine;

/// How statements are scheduled (paper §6.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvalMode {
    /// Evaluate fully as soon as a statement is issued.
    Eager,
    /// Defer evaluation until the result is explicitly requested.
    Lazy,
    /// Return immediately and compute in the background during think time.
    Opportunistic,
}

/// Counters describing a session's behaviour, used by the §6 ablation benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Statements submitted.
    pub statements: u64,
    /// Full executions performed by the engine.
    pub executions: u64,
    /// Results served from the materialisation cache.
    pub cache_hits: u64,
    /// Background (opportunistic) executions started.
    pub background_started: u64,
    /// Background results that were ready by the time they were requested.
    pub background_ready_on_request: u64,
}

/// A handle to a result that may still be computing in the background.
pub struct QueryFuture {
    fingerprint: String,
    receiver: Option<Receiver<DfResult<DataFrame>>>,
    handle: Option<JoinHandle<()>>,
}

impl QueryFuture {
    /// True if the background computation has finished (successfully or not).
    pub fn is_ready(&self) -> bool {
        self.handle
            .as_ref()
            .map(|h| h.is_finished())
            .unwrap_or(true)
    }

    /// The fingerprint of the expression this future computes.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    fn wait(mut self) -> DfResult<DataFrame> {
        let receiver = self
            .receiver
            .take()
            .ok_or_else(|| DfError::internal("future already consumed"))?;
        let result = receiver
            .recv()
            .map_err(|_| DfError::internal("background worker dropped its result"))?;
        if let Some(handle) = self.handle.take() {
            handle.join().ok();
        }
        result
    }
}

/// A stateful analysis session in front of an [`Engine`].
pub struct QuerySession {
    engine: Arc<dyn Engine>,
    mode: EvalMode,
    cache: Arc<Mutex<HashMap<String, DataFrame>>>,
    pending: Mutex<HashMap<String, QueryFuture>>,
    stats: Mutex<SessionStats>,
    cache_enabled: bool,
}

impl QuerySession {
    /// A session over `engine` using the given evaluation mode.
    pub fn new(engine: Arc<dyn Engine>, mode: EvalMode) -> Self {
        QuerySession {
            engine,
            mode,
            cache: Arc::new(Mutex::new(HashMap::new())),
            pending: Mutex::new(HashMap::new()),
            stats: Mutex::new(SessionStats::default()),
            cache_enabled: true,
        }
    }

    /// Disable the materialisation cache (ablation arm).
    pub fn without_cache(mut self) -> Self {
        self.cache_enabled = false;
        self
    }

    /// The evaluation mode this session uses.
    pub fn mode(&self) -> EvalMode {
        self.mode
    }

    /// The engine behind this session.
    pub fn engine(&self) -> &Arc<dyn Engine> {
        &self.engine
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> SessionStats {
        *self.stats.lock()
    }

    /// Submit a statement. Under eager evaluation this blocks and computes; under lazy
    /// evaluation it records nothing (the expression itself is the pending work); under
    /// opportunistic evaluation it kicks off a background computation keyed by the
    /// expression fingerprint.
    pub fn submit(&self, expr: &AlgebraExpr) -> DfResult<()> {
        self.stats.lock().statements += 1;
        match self.mode {
            EvalMode::Eager => {
                self.materialize(expr)?;
                Ok(())
            }
            EvalMode::Lazy => Ok(()),
            EvalMode::Opportunistic => {
                self.spawn_background(expr);
                Ok(())
            }
        }
    }

    /// Fetch the full result of an expression, using (in order) the materialisation
    /// cache, a finished background future, or a fresh execution.
    pub fn collect(&self, expr: &AlgebraExpr) -> DfResult<DataFrame> {
        let fingerprint = expr.fingerprint();
        if self.cache_enabled {
            if let Some(hit) = self.cache.lock().get(&fingerprint).cloned() {
                self.stats.lock().cache_hits += 1;
                return Ok(hit);
            }
        }
        let pending = self.pending.lock().remove(&fingerprint);
        if let Some(future) = pending {
            if future.is_ready() {
                self.stats.lock().background_ready_on_request += 1;
            }
            let result = future.wait()?;
            self.remember(&fingerprint, &result);
            return Ok(result);
        }
        self.materialize(expr)
    }

    /// Fetch only the first `k` rows of an expression — the tabular-view inspection of
    /// §6.1.2. Prefers the cache, then a ready background result, then the engine's
    /// prefix-prioritised path (it does *not* wait for an unfinished background run,
    /// because the prefix path is usually faster than finishing the full result).
    pub fn head(&self, expr: &AlgebraExpr, k: usize) -> DfResult<DataFrame> {
        let fingerprint = expr.fingerprint();
        if self.cache_enabled {
            if let Some(hit) = self.cache.lock().get(&fingerprint).cloned() {
                self.stats.lock().cache_hits += 1;
                return Ok(hit.head(k));
            }
        }
        let ready = {
            let pending = self.pending.lock();
            pending
                .get(&fingerprint)
                .map(|f| f.is_ready())
                .unwrap_or(false)
        };
        if ready {
            let future = self.pending.lock().remove(&fingerprint);
            if let Some(future) = future {
                self.stats.lock().background_ready_on_request += 1;
                let result = future.wait()?;
                self.remember(&fingerprint, &result);
                return Ok(result.head(k));
            }
        }
        self.stats.lock().executions += 1;
        self.engine.execute_prefix(expr, k)
    }

    /// Fetch only the last `k` rows of an expression.
    pub fn tail(&self, expr: &AlgebraExpr, k: usize) -> DfResult<DataFrame> {
        let fingerprint = expr.fingerprint();
        if self.cache_enabled {
            if let Some(hit) = self.cache.lock().get(&fingerprint).cloned() {
                self.stats.lock().cache_hits += 1;
                return Ok(hit.tail(k));
            }
        }
        self.stats.lock().executions += 1;
        self.engine.execute_suffix(expr, k)
    }

    /// Number of results currently held by the materialisation cache.
    pub fn cached_results(&self) -> usize {
        self.cache.lock().len()
    }

    /// Drop every cached result (models the §6.2.2 eviction discussion in its simplest
    /// form).
    pub fn clear_cache(&self) {
        self.cache.lock().clear();
    }

    fn materialize(&self, expr: &AlgebraExpr) -> DfResult<DataFrame> {
        self.stats.lock().executions += 1;
        let result = self.engine.execute(expr)?;
        self.remember(&expr.fingerprint(), &result);
        Ok(result)
    }

    fn remember(&self, fingerprint: &str, result: &DataFrame) {
        if self.cache_enabled {
            self.cache
                .lock()
                .insert(fingerprint.to_string(), result.clone());
        }
    }

    fn spawn_background(&self, expr: &AlgebraExpr) {
        let fingerprint = expr.fingerprint();
        if self.cache_enabled && self.cache.lock().contains_key(&fingerprint) {
            return;
        }
        if self.pending.lock().contains_key(&fingerprint) {
            return;
        }
        let engine = Arc::clone(&self.engine);
        let expr = expr.clone();
        let (sender, receiver) = channel();
        {
            let mut stats = self.stats.lock();
            stats.background_started += 1;
            stats.executions += 1;
        }
        let handle = std::thread::spawn(move || {
            let result = engine.execute(&expr);
            sender.send(result).ok();
        });
        self.pending.lock().insert(
            fingerprint.clone(),
            QueryFuture {
                fingerprint,
                receiver: Some(receiver),
                handle: Some(handle),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ModinConfig, ModinEngine};
    use df_core::algebra::{MapFunc, Predicate};
    use df_types::cell::cell;

    fn engine() -> Arc<dyn Engine> {
        Arc::new(ModinEngine::with_config(
            ModinConfig::sequential().with_partition_size(8, 4),
        ))
    }

    fn frame(rows: usize) -> DataFrame {
        DataFrame::from_columns(
            vec!["v", "w"],
            vec![
                (0..rows).map(|i| cell(i as i64)).collect(),
                (0..rows).map(|i| cell((i * 2) as i64)).collect(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn eager_mode_computes_on_submit_and_caches() {
        let session = QuerySession::new(engine(), EvalMode::Eager);
        let expr = AlgebraExpr::literal(frame(30)).map(MapFunc::IsNullMask);
        session.submit(&expr).unwrap();
        assert_eq!(session.stats().executions, 1);
        let out = session.collect(&expr).unwrap();
        assert_eq!(out.shape(), (30, 2));
        // Second fetch is a cache hit, not a re-execution.
        session.collect(&expr).unwrap();
        assert_eq!(session.stats().executions, 1);
        assert_eq!(session.stats().cache_hits, 2);
        assert_eq!(session.cached_results(), 1);
    }

    #[test]
    fn lazy_mode_defers_until_collect() {
        let session = QuerySession::new(engine(), EvalMode::Lazy);
        let expr = AlgebraExpr::literal(frame(10)).select(Predicate::True);
        session.submit(&expr).unwrap();
        assert_eq!(session.stats().executions, 0);
        session.collect(&expr).unwrap();
        assert_eq!(session.stats().executions, 1);
    }

    #[test]
    fn opportunistic_mode_computes_in_background() {
        let session = QuerySession::new(engine(), EvalMode::Opportunistic);
        let expr = AlgebraExpr::literal(frame(50)).map(MapFunc::IsNullMask);
        session.submit(&expr).unwrap();
        assert_eq!(session.stats().background_started, 1);
        // Re-submitting the same statement does not spawn a duplicate worker.
        session.submit(&expr).unwrap();
        assert_eq!(session.stats().background_started, 1);
        let out = session.collect(&expr).unwrap();
        assert_eq!(out.shape(), (50, 2));
        // Once collected the result is cached.
        session.collect(&expr).unwrap();
        assert!(session.stats().cache_hits >= 1);
    }

    #[test]
    fn head_uses_prefix_execution_when_nothing_is_cached() {
        let session = QuerySession::new(engine(), EvalMode::Lazy);
        let expr = AlgebraExpr::literal(frame(100)).map(MapFunc::IsNullMask);
        let head = session.head(&expr, 5).unwrap();
        assert_eq!(head.shape(), (5, 2));
        let tail = session.tail(&expr, 3).unwrap();
        assert_eq!(tail.shape(), (3, 2));
        assert_eq!(tail.cell(2, 0).unwrap(), &cell(false));
    }

    #[test]
    fn opportunistic_sessions_work_over_an_out_of_core_engine() {
        // The spill store is session-scoped and shared (via Arc) with background
        // workers: an opportunistic session over a budgeted engine must produce the
        // same results as an in-memory one, with the store actually engaging.
        let df = frame(300);
        let budget = df.approx_size_bytes() / 4;
        let modin = Arc::new(ModinEngine::with_config(
            ModinConfig::default()
                .with_memory_budget(budget)
                .with_partition_size(16, 4),
        ));
        let session = QuerySession::new(
            Arc::clone(&modin) as Arc<dyn Engine>,
            EvalMode::Opportunistic,
        );
        let expr = AlgebraExpr::literal(df).map(MapFunc::IsNullMask);
        session.submit(&expr).unwrap();
        let out = session.collect(&expr).unwrap();
        assert_eq!(out.shape(), (300, 2));
        let reference = QuerySession::new(engine(), EvalMode::Eager)
            .collect(&expr)
            .unwrap();
        assert!(out.same_data(&reference));
        assert!(
            modin.spill_stats().spill_outs > 0,
            "budgeted engine never spilled: {:?}",
            modin.spill_stats()
        );
    }

    #[test]
    fn cache_can_be_disabled_and_cleared() {
        let session = QuerySession::new(engine(), EvalMode::Eager).without_cache();
        let expr = AlgebraExpr::literal(frame(10)).select(Predicate::True);
        session.submit(&expr).unwrap();
        session.collect(&expr).unwrap();
        assert_eq!(session.stats().cache_hits, 0);
        assert_eq!(session.cached_results(), 0);
        let cached = QuerySession::new(engine(), EvalMode::Eager);
        cached.submit(&expr).unwrap();
        assert_eq!(cached.cached_results(), 1);
        cached.clear_cache();
        assert_eq!(cached.cached_results(), 0);
        assert_eq!(cached.mode(), EvalMode::Eager);
        assert!(cached.engine().capabilities().lazy_execution);
    }
}
