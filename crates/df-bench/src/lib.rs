//! # df-bench
//!
//! Shared harness code for the benchmark targets that regenerate every table and
//! figure of the paper's evaluation (see `DESIGN.md` for the per-experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured results). The bench targets in `benches/`
//! print the same rows/series the paper reports; this library holds the common
//! machinery: timing, result records, table rendering, and the Figure 2 workload
//! runner used by both the bench target and the integration tests.

use std::time::{Duration, Instant};

use df_types::cell::cell;
use df_types::error::DfError;

use df_core::algebra::{Aggregation, AlgebraExpr, MapFunc};
use df_core::dataframe::DataFrame;
use df_core::engine::Engine;

use df_baseline::{BaselineConfig, BaselineEngine};
use df_engine::engine::{ModinConfig, ModinEngine};
use df_workloads::taxi::{generate_raw, TaxiConfig};

/// One measured point of an experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Experiment identifier (e.g. `fig2-map`).
    pub experiment: String,
    /// System under test (e.g. `modin-engine`, `pandas-baseline`).
    pub system: String,
    /// Scale or parameter of the point (e.g. replication factor).
    pub parameter: String,
    /// Wall-clock seconds, or `None` when the system did not finish (DNF).
    pub seconds: Option<f64>,
    /// Free-form note (rows processed, failure reason, …).
    pub note: String,
}

impl BenchRecord {
    /// Render the time column the way the tables print it.
    pub fn time_display(&self) -> String {
        match self.seconds {
            Some(s) => format!("{s:.4}"),
            None => "DNF".to_string(),
        }
    }
}

/// Environment variable naming the JSON file bench targets append their records to.
pub const JSON_ENV_VAR: &str = "DF_BENCH_JSON";

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialise records as a JSON array, one object per line.
pub fn records_to_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let seconds = match r.seconds {
            Some(s) => format!("{s}"),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "  {{\"experiment\":\"{}\",\"system\":\"{}\",\"parameter\":\"{}\",\"seconds\":{},\"note\":\"{}\"}}{}\n",
            json_escape(&r.experiment),
            json_escape(&r.system),
            json_escape(&r.parameter),
            seconds,
            json_escape(&r.note),
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("]\n");
    out
}

/// Parse a JSON array of [`BenchRecord`] objects (the subset of JSON that
/// [`records_to_json`] emits — flat objects with string / number / null fields).
pub fn parse_records_json(text: &str) -> Result<Vec<BenchRecord>, String> {
    let mut parser = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    parser.expect(b'[')?;
    let mut records = Vec::new();
    parser.skip_ws();
    if parser.peek() == Some(b']') {
        return Ok(records);
    }
    loop {
        records.push(parser.parse_record()?);
        parser.skip_ws();
        match parser.next() {
            Some(b',') => parser.skip_ws(),
            Some(b']') => break,
            other => return Err(format!("expected ',' or ']', found {other:?}")),
        }
    }
    Ok(records)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self
            .peek()
            .is_some_and(|b| b == b' ' || b == b'\n' || b == b'\r' || b == b'\t')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        self.pos += 1;
        b
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == byte => Ok(()),
            other => Err(format!("expected {:?}, found {other:?}", byte as char)),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let digit = self
                                .next()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + digit;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) => {
                    // Multi-byte UTF-8: copy the raw bytes of the code point.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    self.pos = start + len;
                    let slice = self
                        .bytes
                        .get(start..self.pos)
                        .ok_or("truncated UTF-8 sequence")?;
                    out.push_str(std::str::from_utf8(slice).map_err(|e| e.to_string())?);
                }
            }
        }
    }

    fn parse_number_or_null(&mut self) -> Result<Option<f64>, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            return Ok(None);
        }
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>().map(Some).map_err(|e| e.to_string())
    }

    fn parse_record(&mut self) -> Result<BenchRecord, String> {
        self.skip_ws();
        self.expect(b'{')?;
        let mut record = BenchRecord {
            experiment: String::new(),
            system: String::new(),
            parameter: String::new(),
            seconds: None,
            note: String::new(),
        };
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            match key.as_str() {
                "experiment" => record.experiment = self.parse_string()?,
                "system" => record.system = self.parse_string()?,
                "parameter" => record.parameter = self.parse_string()?,
                "note" => record.note = self.parse_string()?,
                "seconds" => record.seconds = self.parse_number_or_null()?,
                other => return Err(format!("unknown field {other:?}")),
            }
            self.skip_ws();
            match self.next() {
                Some(b',') => {}
                Some(b'}') => return Ok(record),
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

/// Append records to the JSON file at `path`, merging with any records already in it
/// (several bench targets write to one snapshot file). Parse/IO problems are reported
/// on stderr rather than failing the bench run.
pub fn emit_json_to(path: &str, records: &[BenchRecord]) {
    let mut all = match std::fs::read_to_string(path) {
        Ok(existing) => match parse_records_json(&existing) {
            Ok(records) => records,
            Err(err) => {
                eprintln!("{JSON_ENV_VAR}: ignoring unparseable {path}: {err}");
                Vec::new()
            }
        },
        Err(_) => Vec::new(),
    };
    all.extend(records.iter().cloned());
    if let Err(err) = std::fs::write(path, records_to_json(&all)) {
        eprintln!("{JSON_ENV_VAR}: cannot write {path}: {err}");
    }
}

/// [`emit_json_to`] the file named by `DF_BENCH_JSON`; a no-op when the variable is
/// unset or empty.
pub fn emit_json_env(records: &[BenchRecord]) {
    let Ok(path) = std::env::var(JSON_ENV_VAR) else {
        return;
    };
    if path.is_empty() {
        return;
    }
    emit_json_to(&path, records);
}

/// Render records as an aligned text table, grouped in input order.
pub fn render_table(title: &str, records: &[BenchRecord]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!(
        "{:<18} {:<18} {:<12} {:>10}  {}\n",
        "experiment", "system", "parameter", "time_s", "note"
    ));
    for record in records {
        out.push_str(&format!(
            "{:<18} {:<18} {:<12} {:>10}  {}\n",
            record.experiment,
            record.system,
            record.parameter,
            record.time_display(),
            record.note
        ));
    }
    out
}

/// Time a closure once, returning its result and the elapsed wall-clock time.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Read an integer override from the environment (lets CI shrink the workloads).
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// True when the bench target was invoked in Criterion-style test mode
/// (`cargo bench -- --test`): compile-and-run-check the target, don't measure.
pub fn smoke_test_mode() -> bool {
    std::env::args().any(|arg| arg == "--test")
}

/// Pick `full` for a real measurement run and `smoke` under `cargo bench -- --test`,
/// so CI run-checks every bench target in seconds. Env overrides still win because
/// the result feeds [`env_usize`]'s default.
pub fn smoke_scaled(full: usize, smoke: usize) -> usize {
    if smoke_test_mode() {
        smoke
    } else {
        full
    }
}

/// The four queries of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig2Query {
    /// Null-check map over every cell.
    Map,
    /// Group by `passenger_count`, count rows per group.
    GroupByN,
    /// Count non-null rows (single global group).
    GroupBy1,
    /// Transpose the frame and apply a map across the new rows.
    Transpose,
}

impl Fig2Query {
    /// All four panels in paper order.
    pub const ALL: [Fig2Query; 4] = [
        Fig2Query::Map,
        Fig2Query::GroupByN,
        Fig2Query::GroupBy1,
        Fig2Query::Transpose,
    ];

    /// The panel label used in the output table.
    pub fn label(&self) -> &'static str {
        match self {
            Fig2Query::Map => "map",
            Fig2Query::GroupByN => "groupby_n",
            Fig2Query::GroupBy1 => "groupby_1",
            Fig2Query::Transpose => "transpose",
        }
    }

    /// Build the query expression over a taxi frame.
    pub fn expression(&self, frame: &DataFrame) -> AlgebraExpr {
        let base = AlgebraExpr::literal(frame.clone());
        match self {
            Fig2Query::Map => base.map(MapFunc::IsNullMask),
            Fig2Query::GroupByN => base.group_by(
                vec![cell("passenger_count")],
                vec![Aggregation::count_rows()],
                false,
            ),
            Fig2Query::GroupBy1 => base.group_by(
                vec![],
                vec![
                    Aggregation::of("passenger_count", df_core::algebra::AggFunc::CountNonNull)
                        .with_alias("non_null_rows"),
                ],
                false,
            ),
            Fig2Query::Transpose => base.transpose().map(MapFunc::IsNullMask),
        }
    }
}

/// Configuration of the Figure 2 sweep.
#[derive(Debug, Clone)]
pub struct Fig2Config {
    /// Rows at replication factor 1 (the paper's factor-1 dataset is ~20 GB; here the
    /// scale is laptop-sized and set via `DF_BENCH_BASE_ROWS`).
    pub base_rows: usize,
    /// Replication factors to sweep (the paper uses 1–11).
    pub replications: Vec<usize>,
    /// Worker threads for the scalable engine.
    pub threads: usize,
    /// Cell budget after which the baseline's transpose refuses to run, modelling the
    /// "pandas cannot transpose beyond 6 GB" wall at the harness's scale.
    pub baseline_transpose_cap: usize,
}

impl Default for Fig2Config {
    fn default() -> Self {
        let base_rows = env_usize("DF_BENCH_BASE_ROWS", smoke_scaled(6_000, 300));
        Fig2Config {
            base_rows,
            replications: vec![1, 2, 4, 6, 8],
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            // Factor ~4 of the base dataset: larger replications DNF, mirroring the
            // paper's transpose panel where pandas never completes.
            baseline_transpose_cap: base_rows * df_workloads::TAXI_COLUMNS.len() * 4,
        }
    }
}

/// Run the Figure 2 sweep and return one record per (query, system, replication).
pub fn run_fig2(config: &Fig2Config) -> Vec<BenchRecord> {
    let mut records = Vec::new();
    for &replication in &config.replications {
        let taxi = generate_raw(&TaxiConfig {
            base_rows: config.base_rows,
            replication,
            ..TaxiConfig::default()
        })
        .expect("taxi generation cannot fail");
        let cells = taxi.n_cells();
        let modin = ModinEngine::with_config(
            ModinConfig::default()
                .with_threads(config.threads)
                .with_partition_size((taxi.n_rows() / 8).max(1024), 8),
        );
        let baseline = BaselineEngine::with_config(BaselineConfig {
            max_transpose_cells: Some(config.baseline_transpose_cap),
            ..BaselineConfig::default()
        });
        for query in Fig2Query::ALL {
            let expr = query.expression(&taxi);
            for (system, engine) in [
                ("pandas-baseline", &baseline as &dyn Engine),
                ("modin-engine", &modin as &dyn Engine),
            ] {
                let (outcome, elapsed) = time_once(|| engine.execute_collect(&expr));
                let record = match outcome {
                    Ok(result) => BenchRecord {
                        experiment: format!("fig2-{}", query.label()),
                        system: system.to_string(),
                        parameter: format!("x{replication}"),
                        seconds: Some(elapsed.as_secs_f64()),
                        note: format!(
                            "rows={}, cells={}, out={:?}",
                            taxi.n_rows(),
                            cells,
                            result.shape()
                        ),
                    },
                    Err(DfError::ResourceExhausted(reason)) => BenchRecord {
                        experiment: format!("fig2-{}", query.label()),
                        system: system.to_string(),
                        parameter: format!("x{replication}"),
                        seconds: None,
                        note: reason,
                    },
                    Err(other) => BenchRecord {
                        experiment: format!("fig2-{}", query.label()),
                        system: system.to_string(),
                        parameter: format!("x{replication}"),
                        seconds: None,
                        note: format!("error: {other}"),
                    },
                };
                records.push(record);
            }
        }
    }
    records
}

/// Summarise per-query speedups (baseline time / modin time) from a set of records.
pub fn speedup_summary(records: &[BenchRecord]) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    for record in records {
        if record.system != "pandas-baseline" {
            continue;
        }
        let Some(baseline_time) = record.seconds else {
            continue;
        };
        let matching = records.iter().find(|r| {
            r.system == "modin-engine"
                && r.experiment == record.experiment
                && r.parameter == record.parameter
        });
        if let Some(modin) = matching {
            if let Some(modin_time) = modin.seconds {
                if modin_time > 0.0 {
                    out.push((
                        record.experiment.clone(),
                        record.parameter.clone(),
                        baseline_time / modin_time,
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_queries_build_expected_expressions() {
        let taxi = generate_raw(&TaxiConfig {
            base_rows: 20,
            ..TaxiConfig::default()
        })
        .unwrap();
        assert_eq!(Fig2Query::Map.expression(&taxi).name(), "MAP");
        assert_eq!(Fig2Query::GroupByN.expression(&taxi).name(), "GROUPBY");
        assert_eq!(Fig2Query::Transpose.expression(&taxi).transpose_count(), 1);
        assert_eq!(Fig2Query::Map.label(), "map");
    }

    #[test]
    fn small_fig2_sweep_produces_records_and_dnfs() {
        let config = Fig2Config {
            base_rows: 60,
            replications: vec![1, 3],
            threads: 1,
            baseline_transpose_cap: 60 * df_workloads::TAXI_COLUMNS.len() * 2,
        };
        let records = run_fig2(&config);
        // 4 queries × 2 systems × 2 replications.
        assert_eq!(records.len(), 16);
        // The baseline transposes fine at x1 but hits the wall at x3.
        let baseline_transpose_x3 = records
            .iter()
            .find(|r| {
                r.experiment == "fig2-transpose"
                    && r.system == "pandas-baseline"
                    && r.parameter == "x3"
            })
            .unwrap();
        assert_eq!(baseline_transpose_x3.seconds, None);
        let modin_transpose_x3 = records
            .iter()
            .find(|r| {
                r.experiment == "fig2-transpose"
                    && r.system == "modin-engine"
                    && r.parameter == "x3"
            })
            .unwrap();
        assert!(modin_transpose_x3.seconds.is_some());
        let table = render_table("figure 2", &records);
        assert!(table.contains("DNF"));
        assert!(table.contains("fig2-map"));
        let speedups = speedup_summary(&records);
        assert!(!speedups.is_empty());
    }

    #[test]
    fn json_records_round_trip() {
        let records = vec![
            BenchRecord {
                experiment: "table1/JOIN".into(),
                system: "modin-engine".into(),
                parameter: "30000 rows".into(),
                seconds: Some(1.25),
                note: "out=(3000, 18) \"quoted\"\nnewline\\slash".into(),
            },
            BenchRecord {
                experiment: "fig2-transpose".into(),
                system: "pandas-baseline".into(),
                parameter: "x3".into(),
                seconds: None,
                note: String::new(),
            },
        ];
        let json = records_to_json(&records);
        let parsed = parse_records_json(&json).expect("round trip parses");
        assert_eq!(parsed, records);
        assert_eq!(parse_records_json("[]").unwrap(), vec![]);
        assert!(parse_records_json("{").is_err());
        assert!(parse_records_json("[{\"bogus\":1}]").is_err());
    }

    #[test]
    fn emit_json_to_appends_to_existing_snapshots() {
        let dir = std::env::temp_dir().join(format!("df-bench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("records.json").to_string_lossy().into_owned();
        let record = |name: &str| BenchRecord {
            experiment: name.into(),
            system: "s".into(),
            parameter: "p".into(),
            seconds: Some(0.5),
            note: String::new(),
        };
        emit_json_to(&path, &[record("first")]);
        emit_json_to(&path, &[record("second")]);
        let merged = parse_records_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].experiment, "first");
        assert_eq!(merged[1].experiment, "second");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn helpers_behave() {
        assert_eq!(env_usize("DF_BENCH_DOES_NOT_EXIST", 7), 7);
        let (value, elapsed) = time_once(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(elapsed.as_secs() < 5);
        let record = BenchRecord {
            experiment: "x".into(),
            system: "y".into(),
            parameter: "z".into(),
            seconds: None,
            note: String::new(),
        };
        assert_eq!(record.time_display(), "DNF");
    }
}
