//! Compare a bench JSON snapshot against a freshly produced one and fail on large
//! regressions.
//!
//! ```sh
//! bench_check <baseline.json> <current.json> [max_ratio]
//! ```
//!
//! Records are matched on `(experiment, system, parameter)`; a current record slower
//! than `max_ratio` × its baseline (default 3.0 — a deliberately generous bound that
//! only catches accidental quadratic blowups, not machine noise) is a violation.
//! Records missing from either side are reported but never fail the check, so
//! snapshots from bigger measurement runs can coexist with CI's smoke-scale records.

use std::process::ExitCode;

use df_bench::{parse_records_json, BenchRecord};

fn load(path: &str) -> Result<Vec<BenchRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_records_json(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_path, current_path) = match args.as_slice() {
        [b, c] | [b, c, _] => (b.clone(), c.clone()),
        _ => {
            eprintln!("usage: bench_check <baseline.json> <current.json> [max_ratio]");
            return ExitCode::from(2);
        }
    };
    let max_ratio: f64 = match args.get(2) {
        None => 3.0,
        Some(raw) => match raw.parse() {
            Ok(ratio) => ratio,
            Err(_) => {
                eprintln!("bench_check: max_ratio must be a number, got {raw:?}");
                return ExitCode::from(2);
            }
        },
    };
    let (baseline, current) = match (load(&baseline_path), load(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_check: {err}");
            }
            return ExitCode::from(2);
        }
    };
    let mut compared = 0usize;
    let mut skipped = 0usize;
    let mut violations = Vec::new();
    for record in &current {
        let Some(seconds) = record.seconds else {
            continue;
        };
        let reference = baseline.iter().find(|b| {
            b.experiment == record.experiment
                && b.system == record.system
                && b.parameter == record.parameter
        });
        let Some(base_seconds) = reference.and_then(|b| b.seconds) else {
            skipped += 1;
            continue;
        };
        compared += 1;
        let ratio = if base_seconds > 0.0 {
            seconds / base_seconds
        } else {
            1.0
        };
        let flag = if ratio > max_ratio {
            violations.push(format!(
                "{} / {} / {}: {:.4}s vs baseline {:.4}s ({ratio:.1}x > {max_ratio:.1}x)",
                record.experiment, record.system, record.parameter, seconds, base_seconds
            ));
            " REGRESSION"
        } else {
            ""
        };
        println!(
            "{:<28} {:<18} {:<14} {:>9.4}s vs {:>9.4}s  {ratio:>5.2}x{flag}",
            record.experiment, record.system, record.parameter, seconds, base_seconds
        );
    }
    println!("bench_check: compared {compared} records ({skipped} without a matching baseline)");
    if violations.is_empty() {
        println!("bench_check: no regressions beyond {max_ratio:.1}x");
        ExitCode::SUCCESS
    } else {
        for violation in &violations {
            eprintln!("bench_check: {violation}");
        }
        ExitCode::FAILURE
    }
}
