//! Figure 2: runtime of the four microbenchmark queries (map, groupby(n), groupby(1),
//! transpose) as the dataset scale grows, for the pandas-like baseline and the
//! MODIN-like engine.
//!
//! The paper runs the sweep on 20–250 GB of NYC taxi data on a 128-core node; here the
//! synthetic taxi generator and a laptop-sized sweep (override with
//! `DF_BENCH_BASE_ROWS` / `DF_BENCH_MAX_REPLICATION`) reproduce the *shape*: the
//! scalable engine wins on every panel, the gap grows with scale, and the baseline's
//! transpose stops completing beyond a scale wall (printed as DNF), exactly as pandas
//! does in the paper.

use df_bench::{env_usize, render_table, run_fig2, speedup_summary, Fig2Config};

fn main() {
    let max_replication = env_usize("DF_BENCH_MAX_REPLICATION", df_bench::smoke_scaled(8, 2));
    let replications: Vec<usize> = [1usize, 2, 4, 6, 8, 11]
        .into_iter()
        .filter(|&r| r <= max_replication)
        .collect();
    let config = Fig2Config {
        replications,
        ..Fig2Config::default()
    };
    eprintln!(
        "running figure-2 sweep: base_rows={}, replications={:?}, threads={}",
        config.base_rows, config.replications, config.threads
    );
    let records = run_fig2(&config);
    println!(
        "{}",
        render_table("Figure 2: run times for Modin and Pandas", &records)
    );
    println!("== Figure 2: speedup (baseline / modin) ==");
    println!("{:<18} {:<10} {:>8}", "experiment", "parameter", "speedup");
    for (experiment, parameter, speedup) in speedup_summary(&records) {
        println!("{experiment:<18} {parameter:<10} {speedup:>7.2}x");
    }
    println!();
    println!(
        "note: baseline DNF rows mirror the paper's missing pandas points (\"pandas is \
         unable to run transpose beyond 6 GB\")."
    );
}
