//! Figure 8: alternative pivot plans.
//!
//! Plan (a) pivots directly on the requested column; plan (b) pivots on the other axis
//! and finishes with a TRANSPOSE, which is nearly free under the engine's
//! metadata-only transpose. The paper argues the optimizer should pick the axis with
//! the friendlier grouping; this target measures both plans over a sales table whose
//! axes have very different distinct-value counts, and reports which plan the
//! cost-based chooser (`choose_pivot_plan`) would pick.

use df_bench::{render_table, time_once, BenchRecord};
use df_engine::optimizer::{choose_pivot_plan, PivotPlan};
use df_pandas::{PandasFrame, Session};
use df_workloads::sales::{generate_sales, SalesConfig};

fn main() {
    let years = df_bench::env_usize("DF_BENCH_PIVOT_YEARS", df_bench::smoke_scaled(200, 20));
    let months = 12;
    let sales = generate_sales(&SalesConfig {
        years,
        months,
        seed: 11,
    })
    .expect("sales generation");
    let session = Session::modin();
    let frame = PandasFrame::from_dataframe(&session, sales);

    let mut records = Vec::new();
    let mut results = Vec::new();
    // "Pivot around Month": Month values become the column labels, Year values the
    // rows. Plan (a) groups directly by Year; plan (b) groups by Month (far fewer
    // groups) and transposes the small result.
    for (label, index, columns, plan) in [
        (
            "group by Year, direct (fig 8a)",
            "Year",
            "Month",
            PivotPlan::Direct,
        ),
        (
            "group by Month + transpose (fig 8b)",
            "Year",
            "Month",
            PivotPlan::PivotOtherAxisThenTranspose,
        ),
    ] {
        let (result, elapsed) = time_once(|| {
            frame
                .pivot_with_plan(index, columns, "Sales", plan)
                .expect("pivot plan builds")
                .collect()
                .expect("pivot executes")
        });
        records.push(BenchRecord {
            experiment: "fig8-pivot".to_string(),
            system: "modin-engine".to_string(),
            parameter: label.to_string(),
            seconds: Some(elapsed.as_secs_f64()),
            note: format!("output shape {:?}", result.shape()),
        });
        results.push(result);
    }
    assert!(
        results[0].same_data(&results[1]),
        "both Figure 8 plans must produce the same pivoted table"
    );
    println!(
        "{}",
        render_table("Figure 8: alternative pivot plans", &records)
    );
    let chosen = choose_pivot_plan(years, months);
    println!(
        "cost-based chooser: grouping directly needs {years} distinct Year groups, the other \
         axis only {months} distinct Month groups -> {chosen:?}"
    );
}
