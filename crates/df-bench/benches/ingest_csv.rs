//! Ingest bench: serial vs partition-parallel CSV reading, in and out of core.
//!
//! The paper's flagship end-user win is parallelised dataframe I/O: `read_csv` is the
//! first statement of nearly every workflow. This target writes a taxi-workload CSV
//! file, reads it back through the serial reader and through the engine's chunked
//! parallel ingest at thread counts {1, 4} × memory budgets {∞, ws/4}, asserts every
//! arm is cell-for-cell identical to the serial read, and reports wall-clock plus the
//! ingest/spill statistics.

use df_bench::{render_table, time_once, BenchRecord};
use df_engine::engine::{ModinConfig, ModinEngine};
use df_storage::csv::{read_csv_path, write_csv_string, CsvOptions};
use df_workloads::taxi::{generate_raw, TaxiConfig};

fn main() {
    let rows = df_bench::env_usize(
        "DF_BENCH_INGEST_ROWS",
        df_bench::smoke_scaled(120_000, 2_000),
    );
    let taxi = generate_raw(&TaxiConfig {
        base_rows: rows,
        ..TaxiConfig::default()
    })
    .expect("workload generation");
    let options = CsvOptions::default();
    let dir = std::env::temp_dir().join(format!("df-bench-ingest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("taxi.csv");
    std::fs::write(
        &path,
        write_csv_string(&taxi, &options).expect("render workload csv"),
    )
    .expect("write workload file");
    let file_bytes = std::fs::metadata(&path).expect("metadata").len();

    let mut records = Vec::new();

    // Serial arm: the pre-PR ingest path (whole file → one resident frame).
    let (serial, serial_elapsed) = time_once(|| read_csv_path(&path, &options));
    let serial = serial.expect("serial read");
    let working_set = serial.approx_size_bytes();
    records.push(BenchRecord {
        experiment: "ingest-csv".to_string(),
        system: "serial-reader".to_string(),
        parameter: "serial".to_string(),
        seconds: Some(serial_elapsed.as_secs_f64()),
        note: format!(
            "rows={rows}, file={file_bytes}B, ws={working_set}B, shape={:?}",
            serial.shape()
        ),
    });

    // Parallel arms: threads × budgets, each equivalence-asserted against serial.
    let budgets: Vec<(&str, Option<usize>)> = vec![("inf", None), ("ws/4", Some(working_set / 4))];
    for (label, budget) in &budgets {
        for threads in [1usize, 4] {
            let mut config = ModinConfig::default()
                .with_threads(threads)
                .with_partition_size((rows / 16).max(256), 32);
            if let Some(bytes) = budget {
                config = config.with_memory_budget(*bytes);
            }
            // A fresh engine per arm keeps the ingest/spill statistics attributable.
            let engine = ModinEngine::with_config(config);
            let (outcome, elapsed) = time_once(|| engine.read_csv_handle(&path, &options));
            let handle = outcome.expect("parallel ingest");
            let ingest = engine.ingest_stats();
            let spill = engine.spill_stats();
            // The whole point: the parallel read is cell-for-cell the serial read.
            let assembled = handle.to_dataframe().expect("assemble ingest handle");
            assert!(
                assembled.same_data(&serial),
                "parallel ingest (t={threads}, budget={label}) diverged from serial"
            );
            if budget.is_some() {
                assert!(spill.spill_outs > 0, "ws/4 ingest never spilled: {spill:?}");
            }
            records.push(BenchRecord {
                experiment: "ingest-csv".to_string(),
                system: "modin-engine".to_string(),
                parameter: format!("budget={label},t={threads}"),
                seconds: Some(elapsed.as_secs_f64()),
                note: format!(
                    "rows={rows}, bands={}, bytes={}, spill_outs={}, load_backs={}, peak={}B",
                    ingest.bands_parsed,
                    ingest.ingest_bytes,
                    spill.spill_outs,
                    spill.load_backs,
                    spill.peak_memory_bytes,
                ),
            });
        }
    }

    std::fs::remove_dir_all(&dir).ok();
    println!(
        "{}",
        render_table(
            "Ingest: serial vs partition-parallel CSV reading (paper §3.3 / §5.1)",
            &records
        )
    );
    df_bench::emit_json_env(&records);
}
