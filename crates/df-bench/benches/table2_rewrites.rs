//! Table 2: pandas operators that rewrite one-to-one into algebra operators, plus the
//! §4.4 compositions.
//!
//! The target prints the rewrite catalogue (the paper's table) and then *verifies* each
//! one-to-one rewrite empirically: the pandas-style method and the hand-built algebra
//! expression are executed on both engines and compared cell-for-cell, with timings.

use df_baseline::BaselineEngine;
use df_bench::{render_table, time_once, BenchRecord};
use df_core::algebra::{AlgebraExpr, MapFunc};
use df_core::dataframe::DataFrame;
use df_core::engine::Engine;
use df_engine::engine::ModinEngine;
use df_pandas::{extended_rewrites, render_catalogue, table2_rewrites, PandasFrame, Session};
use df_types::cell::Cell;
use df_workloads::taxi::{generate_typed, TaxiConfig};

/// The expression the pandas-style API builds for a Table 2 operator (the rewrite under
/// test). Each engine executes this expression *and* the hand-built algebra expression,
/// so the equivalence check is per engine and independent of how eagerly that engine
/// types its inputs.
fn pandas_side(frame: &PandasFrame, op: &str) -> AlgebraExpr {
    match op {
        "fillna" => frame.fillna(0).expr().clone(),
        "isnull" => frame.isnull().expr().clone(),
        "transpose" => frame.transpose().expr().clone(),
        "set_index" => frame.set_index("vendor_id").expr().clone(),
        "reset_index" => frame.reset_index("row_id").expr().clone(),
        other => panic!("unknown table-2 operator {other}"),
    }
}

fn algebra_side(base: &AlgebraExpr, op: &str, engine: &dyn Engine) -> DataFrame {
    let expr = match op {
        "fillna" => base.clone().map(MapFunc::FillNull(Cell::Int(0))),
        "isnull" => base.clone().map(MapFunc::IsNullMask),
        "transpose" => base.clone().transpose(),
        "set_index" => base.clone().to_labels("vendor_id"),
        "reset_index" => base.clone().from_labels("row_id"),
        other => panic!("unknown table-2 operator {other}"),
    };
    engine
        .execute_collect(&expr)
        .expect("algebra-side rewrite executes")
}

fn main() {
    println!("== Table 2: one-to-one rewrites ==");
    print!("{}", render_catalogue(&table2_rewrites()));
    println!();
    println!("== Section 4.4: composite rewrites ==");
    print!("{}", render_catalogue(&extended_rewrites()));
    println!();

    let taxi = generate_typed(&TaxiConfig {
        base_rows: df_bench::env_usize("DF_BENCH_TABLE2_ROWS", df_bench::smoke_scaled(4_000, 300)),
        ..TaxiConfig::default()
    })
    .expect("workload generation");
    let session = Session::modin();
    let frame = PandasFrame::from_dataframe(&session, taxi.clone());
    let base = AlgebraExpr::literal(taxi);
    let modin = ModinEngine::new();
    let baseline = BaselineEngine::new();

    let mut records = Vec::new();
    for rewrite in table2_rewrites() {
        let api_expr = pandas_side(&frame, rewrite.pandas_op);
        for (system, engine) in [
            ("modin-engine", &modin as &dyn Engine),
            ("pandas-baseline", &baseline as &dyn Engine),
        ] {
            let via_api = engine
                .execute_collect(&api_expr)
                .expect("API-built expression executes");
            let (result, elapsed) = time_once(|| algebra_side(&base, rewrite.pandas_op, engine));
            let equivalent = result.same_data(&via_api);
            records.push(BenchRecord {
                experiment: "tab2-rewrite".to_string(),
                system: system.to_string(),
                parameter: rewrite.pandas_op.to_string(),
                seconds: Some(elapsed.as_secs_f64()),
                note: format!(
                    "algebra={}, equivalent_to_api={}",
                    match rewrite.kind {
                        df_pandas::RewriteKind::OneToOne { algebra_op } => algebra_op,
                        _ => "composition",
                    },
                    equivalent
                ),
            });
        }
    }
    println!(
        "{}",
        render_table("Table 2: rewrite equivalence and cost per engine", &records)
    );
    assert!(
        records
            .iter()
            .all(|r| r.note.contains("equivalent_to_api=true")),
        "every Table 2 rewrite must be equivalent to the pandas-style API result"
    );
}
