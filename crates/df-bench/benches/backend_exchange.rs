//! Executor-backend ablation: threads vs spawned worker processes.
//!
//! The distribution-ready `ExecBackend` seam places the same band tasks either on
//! the in-process thread pool or on worker processes that receive their inputs as
//! checksummed spill-v4 frames over pipes. This target runs the shuffle-dispatched
//! operator suite (JOIN, SORT, DROP_DUPLICATES, DIFFERENCE, GROUPBY) over the cross
//! of the two backends and two memory budgets (unbounded vs ws/4), asserting every
//! arm cell-for-cell identical to the threads/unbounded ground truth before its
//! record is emitted. Each procs record reports the pool's health counters
//! (workers spawned, tasks shipped remotely) next to the time, so the wire-protocol
//! overhead is attributable. When the worker binary is not built (`cargo bench`
//! without a prior workspace build), the procs arms are recorded as skipped
//! (`seconds: null`) instead of failing the target.

use df_bench::{render_table, time_once, BenchRecord};
use df_core::algebra::{AggFunc, Aggregation, AlgebraExpr, JoinOn, JoinType, SortSpec};
use df_core::dataframe::DataFrame;
use df_core::engine::Engine;
use df_engine::engine::{ModinConfig, ModinEngine};
use df_types::backend::BackendKind;
use df_types::cell::cell;
use df_workloads::taxi::{generate_typed, TaxiConfig};

fn queries(taxi: &DataFrame, lookup: &DataFrame) -> Vec<(&'static str, AlgebraExpr)> {
    let rows = taxi.n_rows();
    let base = || AlgebraExpr::literal(taxi.clone());
    vec![
        (
            "sort",
            base().sort(SortSpec::ascending(vec![cell("fare_amount")])),
        ),
        (
            "join",
            base().join(
                AlgebraExpr::literal(lookup.clone()),
                JoinOn::Columns(vec![cell("passenger_count")]),
                JoinType::Inner,
            ),
        ),
        (
            "drop_duplicates",
            base()
                .union(base().limit(rows / 4, false))
                .drop_duplicates(),
        ),
        (
            "difference",
            base().difference(base().limit(rows / 2, false)),
        ),
        (
            "groupby",
            base().group_by(
                vec![cell("passenger_count")],
                vec![
                    Aggregation::count_rows(),
                    Aggregation::of("fare_amount", AggFunc::Mean).with_alias("fare_mean"),
                ],
                false,
            ),
        ),
    ]
}

fn main() {
    let rows = df_bench::env_usize("DF_BENCH_BACKEND_ROWS", df_bench::smoke_scaled(20_000, 400));
    let threads = df_bench::env_usize(
        "DF_BENCH_BACKEND_THREADS",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let taxi = generate_typed(&TaxiConfig {
        base_rows: rows,
        ..TaxiConfig::default()
    })
    .expect("workload generation");
    let lookup = {
        let keys: Vec<df_types::cell::Cell> = (0..8).map(|i| cell(i as i64)).collect();
        let names: Vec<df_types::cell::Cell> = (0..8).map(|i| cell(format!("group-{i}"))).collect();
        DataFrame::from_columns(vec!["passenger_count", "group_name"], vec![keys, names]).unwrap()
    };
    let working_set = taxi.approx_size_bytes();
    let budgets: Vec<(&str, Option<usize>)> = vec![("inf", None), ("ws/4", Some(working_set / 4))];

    let mut records = Vec::new();
    // Ground truth per query: the threads/unbounded run (the first arm).
    let mut ground_truth: std::collections::HashMap<&'static str, DataFrame> =
        std::collections::HashMap::new();
    for (system, kind) in [
        ("threads", BackendKind::Threads),
        ("procs", BackendKind::Procs),
    ] {
        for (label, budget) in &budgets {
            let mut config = ModinConfig::default()
                .with_threads(threads)
                .with_partition_size((rows / 16).max(256), 8)
                .with_backend(kind);
            if let Some(bytes) = budget {
                config = config.with_memory_budget(*bytes);
            }
            for (name, expr) in queries(&taxi, &lookup) {
                // A fresh engine per query keeps pool and spill stats attributable.
                let engine = match ModinEngine::try_with_config(config.clone()) {
                    Ok(engine) => engine,
                    Err(err) => {
                        records.push(BenchRecord {
                            experiment: format!("backend-exchange/{name}"),
                            system: system.to_string(),
                            parameter: format!("budget={label}"),
                            seconds: None,
                            note: format!("skipped: {err}"),
                        });
                        continue;
                    }
                };
                let (outcome, elapsed) = time_once(|| engine.execute_collect(&expr));
                let result = outcome.expect("query executes");
                // Every arm must agree with the threads/unbounded run. GROUPBY
                // means may re-associate float partials across band placements,
                // so it gets an epsilon; everything else moves cells verbatim.
                match ground_truth.get(name) {
                    None => {
                        ground_truth.insert(name, result.clone());
                    }
                    Some(expected) => {
                        let agrees = if name == "groupby" {
                            result.approx_same_data(expected, 1e-9)
                        } else {
                            result.same_data(expected)
                        };
                        assert!(
                            agrees,
                            "{name} ({system}, budget={label}) diverged from the \
                             threads/unbounded run"
                        );
                    }
                }
                let health = engine.backend_health();
                records.push(BenchRecord {
                    experiment: format!("backend-exchange/{name}"),
                    system: system.to_string(),
                    parameter: format!("budget={label}"),
                    seconds: Some(elapsed.as_secs_f64()),
                    note: format!(
                        "rows={rows}, out={:?}, ws={working_set}B, workers={}, remote_tasks={}, local_tasks={}, equivalence=asserted",
                        result.shape(),
                        health.workers_spawned,
                        health.tasks_remote,
                        health.tasks_local,
                    ),
                });
            }
        }
    }
    println!(
        "{}",
        render_table(
            "Ablation: executor backend (threads vs worker processes) vs operator cost",
            &records
        )
    );
    df_bench::emit_json_env(&records);
}
