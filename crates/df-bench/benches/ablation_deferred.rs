//! Ablation (§6.1): deferred execution across statement boundaries under the
//! handle-based narrow waist.
//!
//! A four-statement chained pipeline (filter → join → groupby → sort, typed as
//! separate `PandasFrame` statements) runs under eager and lazy scheduling, each at
//! memory budgets {∞, ws/4}. Eager sessions execute every statement on submit but
//! cross each boundary as a partitioned handle (no assembly, no re-partitioning of
//! the prefix); lazy sessions defer the whole chain to the final collect and execute
//! it as one plan. Each arm's result is asserted cell-for-cell identical to the
//! eager/unlimited ground truth, and the notes report the session and engine
//! counters (executions, handle reuses, assemblies, spill-outs).

use std::sync::Arc;

use df_bench::{render_table, time_once, BenchRecord};
use df_core::algebra::{AggFunc, Aggregation, JoinType};
use df_core::dataframe::DataFrame;
use df_engine::engine::ModinConfig;
use df_engine::session::EvalMode;
use df_pandas::{PandasFrame, Session};
use df_types::cell::cell;
use df_workloads::taxi::{generate_typed, TaxiConfig};

fn lookup() -> DataFrame {
    let keys: Vec<df_types::cell::Cell> = (0..8).map(|i| cell(i as i64)).collect();
    let names: Vec<df_types::cell::Cell> = (0..8).map(|i| cell(format!("group-{i}"))).collect();
    DataFrame::from_columns(vec!["passenger_count", "group_name"], vec![keys, names]).unwrap()
}

/// The chained pipeline, one `PandasFrame` statement per step; returns the final
/// statement's materialised result.
fn run_pipeline(session: &Arc<Session>, taxi: &DataFrame) -> DataFrame {
    let trips = PandasFrame::from_dataframe(session, taxi.clone());
    let dims = PandasFrame::from_dataframe(session, lookup());
    let filtered = trips.filter_gt("fare_amount", 12.0).expect("filter");
    let joined = filtered.merge_on(&dims, &["passenger_count"], JoinType::Inner);
    let grouped = joined.groupby_agg(
        &["group_name"],
        vec![
            Aggregation::count_rows(),
            Aggregation::of("fare_amount", AggFunc::Sum).with_alias("fare_sum"),
        ],
        false,
    );
    let sorted = grouped.sort_values(&["group_name"], true);
    sorted.collect().expect("pipeline collects")
}

fn main() {
    let rows = df_bench::env_usize(
        "DF_BENCH_DEFERRED_ROWS",
        df_bench::smoke_scaled(20_000, 400),
    );
    let threads = df_bench::env_usize(
        "DF_BENCH_DEFERRED_THREADS",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let taxi = generate_typed(&TaxiConfig {
        base_rows: rows,
        ..TaxiConfig::default()
    })
    .expect("workload generation");
    let working_set = taxi.approx_size_bytes();
    let budgets: Vec<(&str, Option<usize>)> = vec![("inf", None), ("ws/4", Some(working_set / 4))];

    let mut records = Vec::new();
    let mut ground_truth: Option<DataFrame> = None;
    for (label, budget) in &budgets {
        for mode in [EvalMode::Eager, EvalMode::Lazy] {
            let mut config = ModinConfig::default()
                .with_threads(threads)
                .with_partition_size((rows / 16).max(256), 8);
            if let Some(bytes) = budget {
                config = config.with_memory_budget(*bytes);
            }
            let session = Session::modin_with(config, mode);
            let (result, elapsed) = time_once(|| run_pipeline(&session, &taxi));
            // Every arm must agree with the eager/unlimited ground truth.
            match &ground_truth {
                None => ground_truth = Some(result.clone()),
                Some(expected) => assert!(
                    result.same_data(expected),
                    "{mode:?}/budget={label} diverged from the eager in-memory run"
                ),
            }
            let stats = session.stats();
            let engine = session.modin_engine().expect("modin session");
            let spill = session.spill_stats().unwrap_or_default();
            records.push(BenchRecord {
                experiment: "abl-deferred/pipeline".to_string(),
                system: format!("{mode:?}"),
                parameter: format!("budget={label}"),
                seconds: Some(elapsed.as_secs_f64()),
                note: format!(
                    "rows={rows}, out={:?}, execs={}, handle_reuses={}, assemblies={}, spill_outs={}",
                    result.shape(),
                    stats.executions,
                    engine.handles_reused(),
                    engine.assemblies_dispatched(),
                    spill.spill_outs,
                ),
            });
        }
    }
    println!(
        "{}",
        render_table(
            "Ablation: deferred execution across statement boundaries (paper §6.1)",
            &records
        )
    );
    println!(
        "eager sessions execute per statement but cross each boundary as a partitioned \
         handle; lazy sessions run the whole chain as one plan at collect. Both agree \
         cell-for-cell with the eager in-memory run at every budget."
    );
    df_bench::emit_json_env(&records);
}
