//! Ablation (§5.1): the cost of schema induction and the value of deferring it.
//!
//! The workload ingests the *raw* (untyped string) taxi trace and runs a pipeline
//! whose operators are type-agnostic (null-mask map, positional selection, groupby
//! count). Four arms are measured:
//!
//! * modin, deferred induction (default) — `S` never runs for this pipeline;
//! * modin, eager induction — literals are parsed up front;
//! * baseline, eager induction (pandas behaviour) — `S` + parsing re-run per operator;
//! * baseline, induction disabled — isolates how much of the baseline's cost is
//!   schema work versus copies.
//!
//! The per-arm schema-induction scan counter (from `df-types`) is reported alongside
//! wall-clock time.

use df_baseline::{BaselineConfig, BaselineEngine};
use df_bench::{render_table, time_once, BenchRecord};
use df_core::algebra::{Aggregation, AlgebraExpr, MapFunc, Predicate};
use df_core::engine::Engine;
use df_engine::engine::{ModinConfig, ModinEngine};
use df_types::cell::cell;
use df_types::infer::{induction_scan_count, reset_induction_scan_count};
use df_workloads::taxi::{generate_raw, TaxiConfig};

fn pipeline(taxi: &df_core::dataframe::DataFrame) -> AlgebraExpr {
    AlgebraExpr::literal(taxi.clone())
        .map(MapFunc::FillNull(cell("0")))
        .select(Predicate::PositionRange {
            start: 0,
            end: taxi.n_rows(),
        })
        .group_by(
            vec![cell("passenger_count")],
            vec![Aggregation::count_rows()],
            false,
        )
}

fn main() {
    let rows = df_bench::env_usize("DF_BENCH_SCHEMA_ROWS", df_bench::smoke_scaled(20_000, 500));
    let taxi = generate_raw(&TaxiConfig {
        base_rows: rows,
        ..TaxiConfig::default()
    })
    .expect("workload generation");
    let expr = pipeline(&taxi);

    let arms: Vec<(&str, Box<dyn Engine>)> = vec![
        (
            "modin (deferred S)",
            Box::new(ModinEngine::with_config(ModinConfig {
                defer_schema_induction: true,
                ..ModinConfig::default().with_partition_size(8_192, 8)
            })),
        ),
        (
            "modin (eager S)",
            Box::new(ModinEngine::with_config(ModinConfig {
                defer_schema_induction: false,
                ..ModinConfig::default().with_partition_size(8_192, 8)
            })),
        ),
        (
            "baseline (eager S)",
            Box::new(BaselineEngine::with_config(BaselineConfig::default())),
        ),
        (
            "baseline (no S)",
            Box::new(BaselineEngine::with_config(BaselineConfig {
                eager_schema_induction: false,
                ..BaselineConfig::default()
            })),
        ),
    ];

    let mut records = Vec::new();
    for (name, engine) in &arms {
        reset_induction_scan_count();
        let (result, elapsed) = time_once(|| engine.execute_collect(&expr));
        let scans = induction_scan_count();
        let shape = result.expect("pipeline executes").shape();
        records.push(BenchRecord {
            experiment: "abl-schema".to_string(),
            system: (*name).to_string(),
            parameter: format!("{rows} raw rows"),
            seconds: Some(elapsed.as_secs_f64()),
            note: format!("induction scans={scans}, out={shape:?}"),
        });
    }
    println!(
        "{}",
        render_table(
            "Ablation: schema induction deferral on an untyped pipeline (paper §5.1)",
            &records
        )
    );
}
