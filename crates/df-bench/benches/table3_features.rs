//! Table 3: feature comparison of dataframe and dataframe-like systems.
//!
//! The paper's table compares Modin, pandas, R, Spark and Dask. Here the matrix is
//! probed live from the engines in this workspace: the MODIN-like engine, the
//! pandas-like baseline, the reference executor, and a deliberately restricted
//! "relational-like" capability set standing in for Spark/Dask-style systems.

use df_baseline::BaselineEngine;
use df_core::engine::{Capabilities, Engine};
use df_engine::engine::ModinEngine;

fn main() {
    let modin = ModinEngine::new();
    let baseline = BaselineEngine::new();
    let reference = df_core::engine::ReferenceEngine;
    let systems: Vec<(&str, Capabilities)> = vec![
        ("Modin", modin.capabilities()),
        ("Pandas", baseline.capabilities()),
        ("Reference", reference.capabilities()),
        ("Relational-like", Capabilities::relational_like()),
    ];

    println!("== Table 3: dataframe vs dataframe-like feature matrix ==");
    print!("{:<22}", "Feature");
    for (name, _) in &systems {
        print!("{name:<18}");
    }
    println!();
    let feature_count = systems[0].1.as_rows().len();
    for i in 0..feature_count {
        let feature_name = systems[0].1.as_rows()[i].0;
        print!("{feature_name:<22}");
        for (_, caps) in &systems {
            let supported = caps.as_rows()[i].1;
            print!("{:<18}", if supported { "X" } else { "" });
        }
        println!();
    }
    println!();
    println!(
        "probed live from Engine::capabilities(); the Relational-like column models the \
         Spark/Dask restrictions the paper describes (no ordered model, no row/column \
         equivalence, no TRANSPOSE, no FROMLABELS)."
    );
}
