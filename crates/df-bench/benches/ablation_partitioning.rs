//! Ablation (§3.1): row vs column vs block partitioning.
//!
//! The paper motivates flexible partitioning by noting that some operators are
//! embarrassingly parallel over rows (map, selection) while others (transpose,
//! column-wise work) prefer column or block partitioning. This target runs a per-cell
//! map, a groupby and a transpose-then-map query under each partitioning scheme and
//! reports the cost, plus how many blocks the metadata transpose deferred.

use df_bench::{render_table, time_once, BenchRecord};
use df_core::algebra::{Aggregation, AlgebraExpr, MapFunc};
use df_core::engine::Engine;
use df_engine::engine::{ModinConfig, ModinEngine};
use df_engine::partition::PartitionScheme;
use df_types::cell::cell;
use df_workloads::taxi::{generate_typed, TaxiConfig};

fn main() {
    let rows = df_bench::env_usize(
        "DF_BENCH_ABLATION_ROWS",
        df_bench::smoke_scaled(30_000, 500),
    );
    let threads = df_bench::env_usize(
        "DF_BENCH_ABLATION_THREADS",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let taxi = generate_typed(&TaxiConfig {
        base_rows: rows,
        ..TaxiConfig::default()
    })
    .expect("workload generation");
    let queries: Vec<(&str, AlgebraExpr)> = vec![
        (
            "map",
            AlgebraExpr::literal(taxi.clone()).map(MapFunc::IsNullMask),
        ),
        (
            "groupby_n",
            AlgebraExpr::literal(taxi.clone()).group_by(
                vec![cell("passenger_count")],
                vec![Aggregation::count_rows()],
                false,
            ),
        ),
        (
            "transpose+map",
            AlgebraExpr::literal(taxi.clone())
                .transpose()
                .map(MapFunc::IsNullMask),
        ),
    ];
    let mut records = Vec::new();
    for scheme in [
        PartitionScheme::Row,
        PartitionScheme::Column,
        PartitionScheme::Block,
    ] {
        let engine = ModinEngine::with_config(
            ModinConfig::default()
                .with_threads(threads)
                .with_scheme(scheme)
                .with_partition_size((rows / 8).max(1024), 4),
        );
        for (name, expr) in &queries {
            let shuffles_before = engine.shuffles_dispatched();
            let (result, elapsed) = time_once(|| engine.execute_collect(expr));
            let shape = result.expect("query executes").shape();
            let shuffles = engine.shuffles_dispatched() - shuffles_before;
            records.push(BenchRecord {
                experiment: format!("abl-partition/{name}"),
                system: format!("{scheme:?}"),
                parameter: format!("{rows} rows"),
                seconds: Some(elapsed.as_secs_f64()),
                note: format!("out={shape:?}, threads={threads}, shuffles={shuffles}"),
            });
        }
        // Show that TRANSPOSE itself stays metadata-only regardless of scheme.
        let grid = engine
            .execute_partitioned(&AlgebraExpr::literal(taxi.clone()).transpose())
            .expect("partitioned transpose");
        records.push(BenchRecord {
            experiment: "abl-partition/transpose-meta".to_string(),
            system: format!("{scheme:?}"),
            parameter: format!("{} partitions", grid.n_partitions()),
            seconds: Some(0.0),
            note: format!("deferred block transposes: {}", grid.deferred_transposes()),
        });
    }
    println!(
        "{}",
        render_table(
            "Ablation: partitioning scheme vs operator cost (paper §3.1)",
            &records
        )
    );
    df_bench::emit_json_env(&records);
}
