//! Ablation (§3.3): out-of-core execution under a memory budget.
//!
//! The paper's storage layer lets "intermediate dataframes exceed main-memory
//! limitations while not throwing memory errors, unlike pandas". This target runs the
//! shuffle-dispatched operator suite (JOIN, SORT, DROP_DUPLICATES, DIFFERENCE) plus
//! GROUPBY over the cross of two budgets — unbounded vs `memory_budget_bytes` capped
//! at 1/4 of the working set — and two block layouts — `row-block` (layout switch
//! off: tagged cells, spill format v2) vs `column-block` (typed kernels, spill format
//! v3). Every arm is verified cell-for-cell identical to the unbounded row-block
//! ground truth before its record is emitted, and each record reports the spill
//! store's own statistics (spill-outs, load-backs, resident peak) next to the time.

use df_bench::{render_table, time_once, BenchRecord};
use df_core::algebra::{AggFunc, Aggregation, AlgebraExpr, JoinOn, JoinType, SortSpec};
use df_core::dataframe::DataFrame;
use df_core::engine::Engine;
use df_engine::engine::{ModinConfig, ModinEngine};
use df_types::cell::cell;
use df_types::column::set_columnar_enabled;
use df_workloads::taxi::{generate_typed, TaxiConfig};

fn queries(taxi: &DataFrame, lookup: &DataFrame) -> Vec<(&'static str, AlgebraExpr)> {
    let rows = taxi.n_rows();
    let base = || AlgebraExpr::literal(taxi.clone());
    vec![
        (
            "sort",
            base().sort(SortSpec::ascending(vec![cell("fare_amount")])),
        ),
        (
            "join",
            base().join(
                AlgebraExpr::literal(lookup.clone()),
                JoinOn::Columns(vec![cell("passenger_count")]),
                JoinType::Inner,
            ),
        ),
        (
            "drop_duplicates",
            base()
                .union(base().limit(rows / 4, false))
                .drop_duplicates(),
        ),
        (
            "difference",
            base().difference(base().limit(rows / 2, false)),
        ),
        (
            "groupby",
            base().group_by(
                vec![cell("passenger_count")],
                vec![
                    Aggregation::count_rows(),
                    Aggregation::of("fare_amount", AggFunc::Mean).with_alias("fare_mean"),
                ],
                false,
            ),
        ),
    ]
}

fn main() {
    let rows = df_bench::env_usize("DF_BENCH_SPILL_ROWS", df_bench::smoke_scaled(20_000, 400));
    let threads = df_bench::env_usize(
        "DF_BENCH_SPILL_THREADS",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let taxi = generate_typed(&TaxiConfig {
        base_rows: rows,
        ..TaxiConfig::default()
    })
    .expect("workload generation");
    let lookup = {
        let keys: Vec<df_types::cell::Cell> = (0..8).map(|i| cell(i as i64)).collect();
        let names: Vec<df_types::cell::Cell> = (0..8).map(|i| cell(format!("group-{i}"))).collect();
        DataFrame::from_columns(vec!["passenger_count", "group_name"], vec![keys, names]).unwrap()
    };
    let working_set = taxi.approx_size_bytes();
    // The two ablation arms: effectively-infinite budget vs a quarter of the input.
    let budgets: Vec<(&str, Option<usize>)> = vec![("inf", None), ("ws/4", Some(working_set / 4))];

    let mut records = Vec::new();
    // Ground truth per query: the unbounded row-block run (the first arm).
    let mut ground_truth: std::collections::HashMap<&'static str, DataFrame> =
        std::collections::HashMap::new();
    for (system, columnar) in [("row-block", false), ("column-block", true)] {
        set_columnar_enabled(columnar);
        for (label, budget) in &budgets {
            let mut config = ModinConfig::default()
                .with_threads(threads)
                .with_partition_size((rows / 16).max(256), 8);
            if let Some(bytes) = budget {
                config = config.with_memory_budget(*bytes);
            }
            for (name, expr) in queries(&taxi, &lookup) {
                // A fresh engine per query keeps the spill statistics attributable.
                let engine = ModinEngine::with_config(config.clone());
                let (outcome, elapsed) = time_once(|| engine.execute_collect(&expr));
                let result = outcome.expect("query executes");
                let stats = engine.spill_stats();
                // Every other arm — bounded, columnar, or both — must agree with
                // the unbounded row-block run cell-for-cell.
                match ground_truth.get(name) {
                    None => {
                        ground_truth.insert(name, result.clone());
                    }
                    Some(expected) => assert!(
                        result.same_data(expected),
                        "{name} ({system}, budget={label}) diverged from the \
                         unbounded row-block run"
                    ),
                }
                records.push(BenchRecord {
                    experiment: format!("abl-spill/{name}"),
                    system: system.to_string(),
                    parameter: format!("budget={label}"),
                    seconds: Some(elapsed.as_secs_f64()),
                    note: format!(
                        "rows={rows}, out={:?}, ws={working_set}B, spill_outs={}, load_backs={}, peak={}B, equivalence=asserted",
                        result.shape(),
                        stats.spill_outs,
                        stats.load_backs,
                        stats.peak_memory_bytes,
                    ),
                });
            }
        }
    }
    set_columnar_enabled(true);
    // Checksum-overhead arm: the v4 length+FNV-checksum frame versus a raw v3
    // write of the same block, measured as spill-file round-trips (write + read
    // back) of the whole taxi working set. The fault-tolerance layer's
    // acceptance bar is <5% overhead with failpoints unset.
    {
        use df_core::columnar::ColumnBlock;
        use df_storage::spill::{
            read_spill_part, write_spill_block_v3, write_spill_part, StoredPart,
        };
        let block = ColumnBlock::from_frame(&taxi);
        let part = StoredPart::Block(block.clone());
        let roundtrips = df_bench::env_usize(
            "DF_BENCH_CHECKSUM_ROUNDTRIPS",
            df_bench::smoke_scaled(40, 4),
        );
        let dir =
            std::env::temp_dir().join(format!("rustframe-abl-checksum-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("bench temp dir");
        let v4_path = dir.join("part.v4.spill");
        let v3_path = dir.join("part.v3.spill");
        let (v4_outcome, v4_elapsed) = time_once(|| {
            for _ in 0..roundtrips {
                write_spill_part(&part, &v4_path)?;
                read_spill_part(&v4_path)?;
            }
            Ok::<(), df_types::error::DfError>(())
        });
        v4_outcome.expect("v4 roundtrips");
        let (v3_outcome, v3_elapsed) = time_once(|| {
            for _ in 0..roundtrips {
                write_spill_block_v3(&block, &v3_path)?;
                read_spill_part(&v3_path)?;
            }
            Ok::<(), df_types::error::DfError>(())
        });
        v3_outcome.expect("v3 roundtrips");
        std::fs::remove_dir_all(&dir).ok();
        let overhead = (v4_elapsed.as_secs_f64() / v3_elapsed.as_secs_f64() - 1.0) * 100.0;
        for (system, elapsed) in [("v4-framed", v4_elapsed), ("v3-raw", v3_elapsed)] {
            records.push(BenchRecord {
                experiment: "abl-spill/checksum".to_string(),
                system: system.to_string(),
                parameter: format!("roundtrips={roundtrips}"),
                seconds: Some(elapsed.as_secs_f64()),
                note: format!("rows={rows}, ws={working_set}B, v4_vs_v3_overhead={overhead:+.1}%"),
            });
        }
    }
    println!(
        "{}",
        render_table(
            "Ablation: out-of-core memory budget vs operator cost (paper §3.3)",
            &records
        )
    );
    df_bench::emit_json_env(&records);
}
