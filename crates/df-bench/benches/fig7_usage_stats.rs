//! Figure 7: pandas usage statistics over a notebook corpus.
//!
//! The paper analyses 1M GitHub notebooks; this target generates the synthetic corpus
//! (whose popularity ranking follows the paper's findings), extracts per-function
//! occurrence counts and per-notebook counts, and prints the Figure 7 histogram rows —
//! also timing how long corpus analysis takes at increasing corpus sizes.

use df_bench::{render_table, time_once, BenchRecord};
use df_workloads::notebooks::{analyze_corpus, generate_corpus, usage_dataframe, CorpusConfig};

fn main() {
    let notebooks = df_bench::env_usize("DF_BENCH_NOTEBOOKS", df_bench::smoke_scaled(2_000, 200));
    let mut records = Vec::new();
    for scale in [notebooks / 4, notebooks / 2, notebooks] {
        let config = CorpusConfig {
            notebooks: scale.max(1),
            ..CorpusConfig::default()
        };
        let corpus = generate_corpus(&config);
        let (stats, elapsed) = time_once(|| analyze_corpus(&corpus));
        records.push(BenchRecord {
            experiment: "fig7-analysis".to_string(),
            system: "call-extractor".to_string(),
            parameter: format!("{} notebooks", scale),
            seconds: Some(elapsed.as_secs_f64()),
            note: format!(
                "pandas notebooks: {} ({:.0}%)",
                stats.pandas_notebooks,
                100.0 * stats.pandas_notebooks as f64 / stats.total_notebooks as f64
            ),
        });
        if scale == notebooks {
            let table = usage_dataframe(&stats).expect("usage dataframe");
            println!("== Figure 7: pandas function usage (top 15) ==");
            println!("{}", table.head(15).display_with(15));
        }
    }
    println!(
        "{}",
        render_table("Figure 7: corpus analysis cost", &records)
    );
}
