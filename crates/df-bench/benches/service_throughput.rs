//! Multi-tenant service throughput: shared-cache dedup vs private caches.
//!
//! N tenant threads drive the same four-statement mix against one
//! `df_service::QueryService` (one shared engine, admission-gated). The cross is
//! tenants {1, 4, 8} × shared-cache {on, off}: with the shared cache on, each
//! unique fingerprint executes once service-wide (single flight) and every other
//! access is a hit; with it off each tenant recomputes into a private cache —
//! the arm that isolates what cross-session reuse is worth. Every result is
//! asserted cell-for-cell identical to a serial single-tenant reference before
//! its record is emitted, and each record carries the admission counters
//! (queued grants, peak queue depth) and cache counters (hits, shared hits,
//! executions) next to the time.

use std::sync::Arc;
use std::time::Duration;

use df_bench::{render_table, time_once, BenchRecord};
use df_core::algebra::{AggFunc, Aggregation, AlgebraExpr, SortSpec};
use df_core::dataframe::DataFrame;
use df_core::engine::Engine;
use df_engine::engine::{ModinConfig, ModinEngine};
use df_service::{QueryService, ServiceConfig};
use df_types::cell::cell;
use df_workloads::taxi::{generate_typed, TaxiConfig};

/// The statement mix every tenant runs. All four read the same literal leaf
/// (`Arc` identity), so their fingerprints are identical across tenants.
fn statements(taxi: &Arc<DataFrame>) -> Vec<Arc<AlgebraExpr>> {
    let leaf = || AlgebraExpr::literal_arc(Arc::clone(taxi));
    vec![
        Arc::new(leaf().group_by(
            vec![cell("passenger_count")],
            vec![Aggregation::count_rows()],
            false,
        )),
        Arc::new(leaf().group_by(
            vec![cell("passenger_count")],
            vec![Aggregation::of("fare_amount", AggFunc::Mean).with_alias("fare_mean")],
            false,
        )),
        Arc::new(leaf().sort(SortSpec::ascending(vec![cell("fare_amount")]))),
        Arc::new(leaf().drop_duplicates()),
    ]
}

fn main() {
    let rows = df_bench::env_usize("DF_BENCH_SERVICE_ROWS", df_bench::smoke_scaled(12_000, 400));
    let reps = df_bench::env_usize("DF_BENCH_SERVICE_REPS", df_bench::smoke_scaled(6, 2));
    let threads = df_bench::env_usize(
        "DF_BENCH_SERVICE_THREADS",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let taxi = Arc::new(
        generate_typed(&TaxiConfig {
            base_rows: rows,
            ..TaxiConfig::default()
        })
        .expect("workload generation"),
    );
    let mix = statements(&taxi);

    // Serial single-tenant ground truth, once per statement.
    let reference_engine = ModinEngine::with_config(
        ModinConfig::sequential().with_partition_size((rows / 16).max(256), 8),
    );
    let expected: Vec<Arc<DataFrame>> = mix
        .iter()
        .map(|e| Arc::new(reference_engine.execute_collect(e).expect("reference")))
        .collect();

    let mut records = Vec::new();
    for tenants in [1usize, 4, 8] {
        for shared in [true, false] {
            let mut config = ServiceConfig::default()
                .with_engine(
                    ModinConfig::default()
                        .with_threads(threads)
                        .with_partition_size((rows / 16).max(256), 8),
                )
                .with_max_concurrent(4)
                .with_queue(256, Duration::from_secs(120));
            if !shared {
                config = config.without_shared_cache();
            }
            let service = QueryService::start(config).expect("service starts");
            let (outcome, elapsed) = time_once(|| {
                let workers: Vec<_> = (0..tenants)
                    .map(|t| {
                        let service = Arc::clone(&service);
                        let mix = mix.clone();
                        let expected = expected.clone();
                        std::thread::spawn(move || {
                            let tenant = service.tenant(&format!("tenant-{t}"));
                            for _ in 0..reps {
                                for (i, expr) in mix.iter().enumerate() {
                                    let out =
                                        tenant.query().collect(expr).expect("statement executes");
                                    assert!(
                                        out.same_data(&expected[i]),
                                        "tenant-{t}: statement {i} diverged from serial"
                                    );
                                }
                            }
                        })
                    })
                    .collect();
                for worker in workers {
                    worker.join().expect("tenant thread panicked");
                }
                Ok::<(), df_types::error::DfError>(())
            });
            outcome.expect("tenant fleet");

            let stats = service.stats();
            let executions: u64 = stats.tenants.iter().map(|(_, s)| s.executions).sum();
            let (hits, shared_hits) = match &stats.cache {
                Some(cache) => (cache.hits, cache.shared_hits),
                // Private caches: aggregate per-session hit counters instead.
                None => (stats.tenants.iter().map(|(_, s)| s.cache_hits).sum(), 0u64),
            };
            records.push(BenchRecord {
                experiment: "service/throughput".to_string(),
                system: format!("shared-cache={}", if shared { "on" } else { "off" }),
                parameter: format!("tenants={tenants}"),
                seconds: Some(elapsed.as_secs_f64()),
                note: format!(
                    "rows={rows}, reps={reps}, threads={threads}, statements={}, \
                     executions={executions}, hits={hits}, shared_hits={shared_hits}, \
                     queued_grants={}, max_queue_depth={}, equivalence=asserted",
                    tenants * reps * mix.len(),
                    stats.admission.queued_grants,
                    stats.admission.max_queue_depth,
                ),
            });
        }
    }
    println!(
        "{}",
        render_table(
            "Multi-tenant service throughput: shared result cache vs private (ROADMAP item 1)",
            &records
        )
    );
    df_bench::emit_json_env(&records);
}
