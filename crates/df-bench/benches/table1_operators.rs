//! Table 1: the 14-operator dataframe algebra.
//!
//! The paper's Table 1 is a definition table rather than a measurement, so this target
//! does three things: (1) it prints the operator roster with its properties as a
//! conformance check, (2) it wall-clock-times every operator once per block layout
//! (`row-block` vs `column-block`, asserting the two arms agree cell-for-cell) at a
//! configurable scale (`DF_BENCH_TABLE1_ROWS`, default 30k; `DF_BENCH_TABLE1_THREADS`,
//! default 4) and emits the records to the `DF_BENCH_JSON` snapshot so the perf
//! trajectory is tracked per PR, and (3) it micro-benchmarks every operator on the
//! scalable engine with Criterion over a small fixed workload.

use criterion::Criterion;

use df_bench::{render_table, time_once, BenchRecord};
use df_core::algebra::{
    AggFunc, Aggregation, AlgebraExpr, CmpOp, ColumnSelector, JoinOn, JoinType, MapFunc, Predicate,
    SortSpec, WindowFunc,
};
use df_core::engine::Engine;
use df_engine::engine::{ModinConfig, ModinEngine};
use df_types::cell::cell;
use df_types::column::set_columnar_enabled;
use df_workloads::taxi::{generate_typed, TaxiConfig};

fn operator_expressions(rows: usize) -> Vec<(&'static str, AlgebraExpr)> {
    let taxi = generate_typed(&TaxiConfig {
        base_rows: rows,
        ..TaxiConfig::default()
    })
    .expect("workload generation");
    let small = taxi.head(200);
    let base = AlgebraExpr::literal(taxi);
    let small_base = AlgebraExpr::literal(small);
    vec![
        (
            "SELECTION",
            base.clone().select(Predicate::ColCmp {
                column: cell("fare_amount"),
                op: CmpOp::Gt,
                value: cell(20.0),
            }),
        ),
        (
            "PROJECTION",
            base.clone().project(ColumnSelector::ByLabels(vec![
                cell("vendor_id"),
                cell("fare_amount"),
            ])),
        ),
        ("UNION", base.clone().union(small_base.clone())),
        ("DIFFERENCE", base.clone().difference(small_base.clone())),
        (
            "CROSS_PRODUCT",
            small_base
                .clone()
                .limit(40, false)
                .cross(small_base.clone().limit(40, false)),
        ),
        (
            "JOIN",
            base.clone().join(
                small_base.clone(),
                JoinOn::Columns(vec![cell("vendor_id")]),
                JoinType::Inner,
            ),
        ),
        ("DROP_DUPLICATES", base.clone().drop_duplicates()),
        (
            "GROUPBY",
            base.clone().group_by(
                vec![cell("passenger_count")],
                vec![
                    Aggregation::count_rows(),
                    Aggregation::of("fare_amount", AggFunc::Mean).with_alias("mean_fare"),
                ],
                false,
            ),
        ),
        (
            "SORT",
            base.clone()
                .sort(SortSpec::ascending(vec![cell("fare_amount")])),
        ),
        (
            "RENAME",
            base.clone()
                .rename(vec![(cell("vendor_id"), cell("vendor"))]),
        ),
        (
            "WINDOW",
            base.clone().window(
                ColumnSelector::ByLabels(vec![cell("fare_amount")]),
                WindowFunc::CumSum,
            ),
        ),
        ("TRANSPOSE", base.clone().transpose()),
        ("MAP", base.clone().map(MapFunc::IsNullMask)),
        ("TOLABELS", base.clone().to_labels("vendor_id")),
        ("FROMLABELS", base.from_labels("trip_id")),
    ]
}

fn print_table1() {
    println!("== Table 1: dataframe algebra operators ==");
    println!(
        "{:<16} {:<10} {:<8} {:<8}",
        "operator", "schema", "origin", "order"
    );
    let rows = [
        ("SELECTION", "static", "REL", "parent"),
        ("PROJECTION", "static", "REL", "parent"),
        ("UNION", "static", "REL", "parent"),
        ("DIFFERENCE", "static", "REL", "parent"),
        ("CROSS/JOIN", "static", "REL", "parent"),
        ("DROP_DUPLICATES", "static", "REL", "parent"),
        ("GROUPBY", "static", "REL", "new"),
        ("SORT", "static", "REL", "new"),
        ("RENAME", "static", "REL", "parent"),
        ("WINDOW", "static", "SQL", "parent"),
        ("TRANSPOSE", "dynamic", "DF", "parent"),
        ("MAP", "dynamic", "DF", "parent"),
        ("TOLABELS", "dynamic", "DF", "parent"),
        ("FROMLABELS", "dynamic", "DF", "parent"),
    ];
    for (op, schema, origin, order) in rows {
        println!("{op:<16} {schema:<10} {origin:<8} {order:<8}");
    }
    println!();
}

/// Wall-clock one execution of every operator at measurement scale, once per block
/// layout: `row-block` pins the global layout switch off (the pre-columnar engine,
/// tagged cells everywhere) and `column-block` pins it on (typed kernels for
/// predicate evaluation, groupby accumulation, sort comparison and shuffle hashing).
/// The two arms must agree cell-for-cell — the record is only emitted after the
/// equivalence assert — so the speedup column can be trusted to compare equal work.
fn timing_pass() -> Vec<BenchRecord> {
    let rows = df_bench::env_usize("DF_BENCH_TABLE1_ROWS", df_bench::smoke_scaled(30_000, 500));
    let threads = df_bench::env_usize("DF_BENCH_TABLE1_THREADS", 4);
    let mut records = Vec::new();
    for (name, expr) in operator_expressions(rows) {
        let mut row_block_result: Option<df_core::dataframe::DataFrame> = None;
        for (system, columnar) in [("row-block", false), ("column-block", true)] {
            set_columnar_enabled(columnar);
            let engine = ModinEngine::with_config(
                ModinConfig::default()
                    .with_threads(threads)
                    .with_partition_size((rows / 8).max(512), 8),
            );
            let (result, elapsed) = time_once(|| engine.execute_collect(&expr));
            let result = result.expect("operator executes");
            match &row_block_result {
                None => row_block_result = Some(result.clone()),
                Some(expected) => assert!(
                    result.same_data(expected),
                    "table1/{name}: column-block arm diverged from the row-block arm"
                ),
            }
            records.push(BenchRecord {
                experiment: format!("table1/{name}"),
                system: system.to_string(),
                parameter: format!("{rows} rows"),
                seconds: Some(elapsed.as_secs_f64()),
                note: format!(
                    "out={:?}, threads={threads}, shuffles={}, fallbacks={}, equivalence=asserted",
                    result.shape(),
                    engine.shuffles_dispatched(),
                    engine.fallbacks_dispatched()
                ),
            });
        }
        set_columnar_enabled(true);
    }
    records
}

fn bench_operators(c: &mut Criterion) {
    let engine = ModinEngine::with_config(ModinConfig::default().with_partition_size(512, 8));
    let mut group = c.benchmark_group("table1_operators");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800));
    for (name, expr) in operator_expressions(2_000) {
        group.bench_function(name, |b| {
            b.iter(|| {
                engine
                    .execute_collect(std::hint::black_box(&expr))
                    .expect("operator executes")
            })
        });
    }
    group.finish();
}

fn main() {
    print_table1();
    let records = timing_pass();
    println!(
        "{}",
        render_table("Table 1 operators: wall-clock per execution", &records)
    );
    df_bench::emit_json_env(&records);
    let mut criterion = Criterion::default().configure_from_args();
    bench_operators(&mut criterion);
}
