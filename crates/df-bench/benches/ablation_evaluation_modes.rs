//! Ablation (§6.1): eager vs lazy vs opportunistic evaluation, and prefix-prioritised
//! inspection.
//!
//! The scripted workload mimics the paper's interactive session: a chain of statements
//! is "typed" with think-time between them, most intermediate results are only ever
//! inspected through `head()`, and one intermediate is revisited at the end. Eager
//! evaluation pays for every statement in full; lazy defers everything to the
//! inspection points; opportunistic overlaps computation with think time and serves
//! revisits from the materialisation cache.

use std::time::Duration;

use df_bench::{render_table, time_once, BenchRecord};
use df_core::algebra::{Aggregation, AlgebraExpr, CmpOp, MapFunc, Predicate};
use df_engine::engine::{ModinConfig, ModinEngine};
use df_engine::session::{EvalMode, QuerySession};
use df_types::cell::cell;
use df_workloads::taxi::{generate_typed, TaxiConfig};

fn scripted_session(
    mode: EvalMode,
    taxi: &df_core::dataframe::DataFrame,
    think_ms: u64,
) -> (f64, String) {
    let engine = std::sync::Arc::new(ModinEngine::with_config(
        ModinConfig::default().with_partition_size(8_192, 8),
    ));
    let session = QuerySession::new(engine, mode);
    let think = Duration::from_millis(think_ms);
    let base = AlgebraExpr::literal(taxi.clone());
    let cleaned = base.clone().map(MapFunc::FillNull(cell(0)));
    let filtered = cleaned.clone().select(Predicate::ColCmp {
        column: cell("fare_amount"),
        op: CmpOp::Gt,
        value: cell(20.0),
    });
    let grouped = filtered.clone().group_by(
        vec![cell("passenger_count")],
        vec![Aggregation::count_rows()],
        false,
    );
    let ((), elapsed) = time_once(|| {
        // Statement 1: clean, glance at the first rows, think.
        session.submit(&cleaned).unwrap();
        session.head(&cleaned, 5).unwrap();
        std::thread::sleep(think);
        // Statement 2: filter, glance, think.
        session.submit(&filtered).unwrap();
        session.head(&filtered, 5).unwrap();
        std::thread::sleep(think);
        // Statement 3: aggregate and actually inspect the full result.
        session.submit(&grouped).unwrap();
        session.collect(&grouped).unwrap();
        // Revisit an earlier intermediate (trial-and-error loop).
        session.collect(&filtered).unwrap();
    });
    let stats = session.stats();
    (
        elapsed.as_secs_f64(),
        format!(
            "executions={}, cache_hits={}, background={}, ready_on_request={}",
            stats.executions,
            stats.cache_hits,
            stats.background_started,
            stats.background_ready_on_request
        ),
    )
}

fn main() {
    let rows = df_bench::env_usize("DF_BENCH_SESSION_ROWS", df_bench::smoke_scaled(40_000, 500));
    let think_ms = df_bench::env_usize("DF_BENCH_THINK_MS", df_bench::smoke_scaled(150, 5)) as u64;
    let taxi = generate_typed(&TaxiConfig {
        base_rows: rows,
        ..TaxiConfig::default()
    })
    .expect("workload generation");
    let mut records = Vec::new();
    for mode in [EvalMode::Eager, EvalMode::Lazy, EvalMode::Opportunistic] {
        let (seconds, note) = scripted_session(mode, &taxi, think_ms);
        records.push(BenchRecord {
            experiment: "abl-eval-mode".to_string(),
            system: format!("{mode:?}"),
            parameter: format!("{rows} rows, think {think_ms}ms"),
            seconds: Some(seconds),
            note,
        });
    }
    println!(
        "{}",
        render_table(
            "Ablation: evaluation modes over an interactive session (paper §6.1)",
            &records
        )
    );
    println!(
        "wall-clock includes the scripted think time; opportunistic evaluation overlaps \
         background execution with it and serves the revisited statement from cache."
    );
}
