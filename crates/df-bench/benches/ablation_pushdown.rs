//! Ablation: cost-based scan pushdown on vs off.
//!
//! A selective pipeline — `SCAN_CSV → SELECTION (id < rows/16) → PROJECTION
//! (2 of 8 columns) [→ JOIN small dim]` — over a clustered file (sorted `id`,
//! so chunk min/max statistics make the filter sargable). The "on" arm runs the
//! default optimizer (predicate + projection pushdown, statistics-driven join
//! strategy); the "off" arm runs the same plan with every rewrite disabled.
//! Both arms are asserted cell-for-cell identical, and the pushdown counters
//! (chunks skipped, columns pruned, join strategy) land in the notes column.

use df_bench::{render_table, time_once, BenchRecord};
use df_core::algebra::{AlgebraExpr, CmpOp, ColumnSelector, JoinOn, JoinType, Predicate};
use df_core::dataframe::DataFrame;
use df_core::engine::Engine;
use df_core::scan::{ScanCsv, ScanOptions};
use df_engine::engine::{ModinConfig, ModinEngine};
use df_engine::optimizer::OptimizerConfig;
use df_types::cell::cell;

fn main() {
    let rows = df_bench::env_usize(
        "DF_BENCH_PUSHDOWN_ROWS",
        df_bench::smoke_scaled(100_000, 2_000),
    );
    // Eight columns; `id` is sorted so the range filter is clustered into the
    // leading chunks, `tag` keys the dim join, the rest is payload the
    // projection should never parse.
    let mut content = String::with_capacity(rows * 48);
    content.push_str("id,tag,c2,c3,c4,c5,c6,c7\n");
    for i in 0..rows {
        content.push_str(&format!(
            "{i},t{},{}.5,x{},y{},z{},w{},p{}\n",
            i % 3,
            i % 9,
            i % 4,
            i % 5,
            i % 6,
            i % 7,
            i % 11
        ));
    }
    let dir = std::env::temp_dir().join(format!("df-bench-pushdown-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("clustered.csv");
    std::fs::write(&path, &content).expect("write workload file");
    let file_bytes = content.len() as u64;

    let dim = DataFrame::from_columns(
        vec!["tag", "bucket"],
        vec![
            vec![cell("t0"), cell("t1"), cell("t2")],
            vec![cell("small"), cell("medium"), cell("large")],
        ],
    )
    .expect("dim table");

    // Filter keeps < 10% of the file; projection keeps 2 of 8 columns.
    let cutoff = (rows / 16).max(1) as i64;
    let predicate = Predicate::ColCmp {
        column: cell("id"),
        op: CmpOp::Lt,
        value: cell(cutoff),
    };
    let scan = |identity: &str| {
        AlgebraExpr::scan_csv(ScanCsv::new(
            &path,
            ScanOptions {
                infer_schema: true,
                ..ScanOptions::default()
            },
            identity,
        ))
    };
    let plans: Vec<(&str, AlgebraExpr)> = vec![
        (
            "scan+filter+project",
            scan("abl-pushdown-project")
                .select(predicate.clone())
                .project(ColumnSelector::ByLabels(vec![cell("c2"), cell("id")])),
        ),
        (
            "scan+filter+join",
            scan("abl-pushdown-join")
                .select(predicate.clone())
                .project(ColumnSelector::ByLabels(vec![cell("tag"), cell("id")]))
                .join(
                    AlgebraExpr::literal(dim.clone()),
                    JoinOn::Columns(vec![cell("tag")]),
                    JoinType::Inner,
                ),
        ),
    ];

    let mut records = Vec::new();
    for (experiment, expr) in &plans {
        let mut results: Vec<DataFrame> = Vec::new();
        for (label, budget) in [("inf", None), ("ws/4", Some((file_bytes as usize) / 4))] {
            for pushdown in [true, false] {
                let mut config =
                    ModinConfig::default().with_partition_size((rows / 16).max(256), 32);
                if let Some(bytes) = budget {
                    config = config.with_memory_budget(bytes);
                }
                if !pushdown {
                    config.optimizer = OptimizerConfig::disabled();
                }
                // Fresh engine per arm: statistics caches and counters stay
                // attributable, and no arm warms another's scan.
                let engine = ModinEngine::with_config(config);
                let (outcome, elapsed) = time_once(|| engine.execute_collect(expr));
                let result = outcome.expect("pipeline evaluation");
                let stats = engine.pushdown_stats();
                let spill = engine.spill_stats();
                let ingest = engine.ingest_stats();
                results.push(result.clone());
                records.push(BenchRecord {
                    experiment: format!("abl-pushdown/{experiment}"),
                    system: if pushdown {
                        "pushdown-on"
                    } else {
                        "pushdown-off"
                    }
                    .to_string(),
                    parameter: format!("budget={label}"),
                    seconds: Some(elapsed.as_secs_f64()),
                    note: format!(
                        "rows={rows}, out={:?}, chunks_skipped={}, columns_pruned={}, \
                         predicates_pushed={}, joins_broadcast={}, joins_shuffled={}, \
                         parsed={}B, peak={}B, equivalence=asserted",
                        result.shape(),
                        stats.chunks_skipped,
                        stats.columns_pruned,
                        stats.predicates_pushed,
                        stats.joins_broadcast,
                        stats.joins_shuffled,
                        ingest.ingest_bytes,
                        spill.peak_memory_bytes,
                    ),
                });
                if pushdown {
                    assert!(
                        stats.chunks_skipped > 0,
                        "{experiment}: clustered filter skipped no chunks"
                    );
                    assert!(
                        stats.columns_pruned > 0,
                        "{experiment}: 2-of-8 projection pruned no columns"
                    );
                } else {
                    assert_eq!(
                        stats.chunks_skipped, 0,
                        "{experiment}: off arm skipped chunks"
                    );
                }
            }
        }
        // Every arm of the experiment is cell-for-cell identical.
        let reference = &results[0];
        for (i, other) in results.iter().enumerate().skip(1) {
            assert!(
                reference.same_data(other),
                "abl-pushdown/{experiment}: arm {i} diverged from arm 0"
            );
        }
    }

    std::fs::remove_dir_all(&dir).ok();
    println!(
        "{}",
        render_table(
            "Ablation: cost-based scan pushdown on vs off (selective scan + join)",
            &records
        )
    );
    df_bench::emit_json_env(&records);
}
