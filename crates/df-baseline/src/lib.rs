//! # df-baseline
//!
//! The comparison system of the paper's evaluation: a deliberately **pandas-like**
//! dataframe engine. It is:
//!
//! * **eager** — every operator materialises its full result before returning (paper
//!   §6.1.1: "every statement is evaluated as soon as it is issued");
//! * **single-threaded** — no partitioning, no parallelism (paper §3.1: "most pandas
//!   operators are single-threaded");
//! * **row-copy heavy** — each operator round-trips the frame through a row-major
//!   [`row_table::RowTable`], modelling pandas' block consolidation copies;
//! * **eagerly typed** — after every operator the full schema is re-induced and raw
//!   string columns are re-parsed, modelling pandas' per-operator dtype resolution;
//! * **memory-capped** — a configurable cell budget models pandas' failure modes:
//!   "pandas is unable to run transpose beyond 6 GB" and out-of-memory crashes on
//!   frames that exceed main memory (paper §3.2). Exceeding the budget returns
//!   [`DfError::ResourceExhausted`] so the figure-2 harness can record DNF points.
//!
//! The point of this crate is *fidelity of the cost profile*, not charity: the paper's
//! Figure 2 contrasts pandas' algorithmic overheads with MODIN's partitioned engine,
//! and that contrast is what the benchmark harness reproduces.

pub mod row_table;

use df_types::error::{DfError, DfResult};

use df_core::algebra::AlgebraExpr;
use df_core::dataframe::DataFrame;
use df_core::engine::{Capabilities, Engine, EngineKind};
use df_core::handle::FrameHandle;
use df_core::ops;

use row_table::RowTable;

/// Tuning knobs for the baseline's pandas-like behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineConfig {
    /// Maximum number of cells any intermediate result may hold before the engine
    /// reports an out-of-memory failure. `None` disables the cap.
    pub max_cells_in_memory: Option<usize>,
    /// Maximum number of cells a frame may hold for TRANSPOSE to be attempted. Pandas
    /// could not transpose frames beyond ~6 GB on the paper's test machine; the default
    /// models that wall at a laptop-appropriate scale. `None` disables the cap.
    pub max_transpose_cells: Option<usize>,
    /// Re-induce the schema and re-parse raw columns after every operator (pandas'
    /// eager dtype behaviour). Disabling this is used by the §5.1 ablation to measure
    /// how much of the baseline's cost is schema work.
    pub eager_schema_induction: bool,
    /// Round-trip every operator through the row-major representation (pandas' copy
    /// behaviour). Disabling this is used by ablations.
    pub row_major_copies: bool,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            max_cells_in_memory: Some(200_000_000),
            max_transpose_cells: Some(8_000_000),
            eager_schema_induction: true,
            row_major_copies: true,
        }
    }
}

impl BaselineConfig {
    /// A configuration with no caps and no extra modelling overheads — useful in tests
    /// that only care about operator semantics.
    pub fn unconstrained() -> Self {
        BaselineConfig {
            max_cells_in_memory: None,
            max_transpose_cells: None,
            eager_schema_induction: false,
            row_major_copies: false,
        }
    }
}

/// The pandas-like baseline engine.
#[derive(Debug, Default, Clone)]
pub struct BaselineEngine {
    config: BaselineConfig,
}

impl BaselineEngine {
    /// An engine with the default (pandas-faithful) configuration.
    pub fn new() -> Self {
        BaselineEngine {
            config: BaselineConfig::default(),
        }
    }

    /// An engine with an explicit configuration.
    pub fn with_config(config: BaselineConfig) -> Self {
        BaselineEngine { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &BaselineConfig {
        &self.config
    }

    /// Enforce the in-memory cell budget on an intermediate result.
    fn check_memory(&self, df: &DataFrame) -> DfResult<()> {
        if let Some(cap) = self.config.max_cells_in_memory {
            if df.n_cells() > cap {
                return Err(DfError::ResourceExhausted(format!(
                    "baseline out of memory: intermediate result holds {} cells (cap {})",
                    df.n_cells(),
                    cap
                )));
            }
        }
        Ok(())
    }

    /// Apply the baseline's per-operator overheads: a row-major round trip (copy) and
    /// eager schema induction, in that order.
    fn finalize(&self, mut df: DataFrame) -> DfResult<DataFrame> {
        self.check_memory(&df)?;
        if self.config.row_major_copies {
            df = RowTable::from_dataframe(&df).into_dataframe()?;
        }
        if self.config.eager_schema_induction {
            df.parse_all();
        }
        Ok(df)
    }

    /// Recursive eager interpreter: children are fully materialised before the parent
    /// operator runs (no pipelining, no reordering — paper §1: "each operator within a
    /// pandas query plan is executed completely before subsequent operators").
    fn eval(&self, expr: &AlgebraExpr) -> DfResult<DataFrame> {
        let result = match expr {
            AlgebraExpr::Literal(df) => {
                let mut frame = df.as_ref().clone();
                if self.config.eager_schema_induction {
                    frame.parse_all();
                }
                frame
            }
            // A handle from an earlier statement: the baseline has no partitioned
            // representation, so it materialises the handle (and then pays its usual
            // per-operator overheads via `finalize`, like any other input).
            AlgebraExpr::Handle(handle) => handle.to_dataframe()?,
            // Scan leaves are built only for engines advertising scan support; the
            // baseline (like the reference executor) has no storage layer to read
            // from, so the shared typed rejection applies.
            AlgebraExpr::ScanCsv(_) => ops::execute_reference(expr)?,
            AlgebraExpr::Transpose { input } => {
                let input = self.eval(input)?;
                if let Some(cap) = self.config.max_transpose_cells {
                    if input.n_cells() > cap {
                        return Err(DfError::ResourceExhausted(format!(
                            "baseline cannot transpose a frame with {} cells (cap {}): \
                             pandas did not complete transposes beyond ~6 GB",
                            input.n_cells(),
                            cap
                        )));
                    }
                }
                ops::reshape::transpose(&input)?
            }
            // Every other operator: evaluate children eagerly, then run the reference
            // semantics over the materialised inputs.
            other => {
                let rewritten = self.materialize_children(other)?;
                ops::execute_reference(&rewritten)?
            }
        };
        self.finalize(result)
    }

    /// Replace each child with a literal holding its eagerly computed value.
    fn materialize_children(&self, expr: &AlgebraExpr) -> DfResult<AlgebraExpr> {
        let mut rewritten = expr.clone();
        match &mut rewritten {
            AlgebraExpr::Literal(_) | AlgebraExpr::Handle(_) | AlgebraExpr::ScanCsv(_) => {}
            AlgebraExpr::Selection { input, .. }
            | AlgebraExpr::Projection { input, .. }
            | AlgebraExpr::DropDuplicates { input }
            | AlgebraExpr::GroupBy { input, .. }
            | AlgebraExpr::Sort { input, .. }
            | AlgebraExpr::Rename { input, .. }
            | AlgebraExpr::Window { input, .. }
            | AlgebraExpr::Transpose { input }
            | AlgebraExpr::Map { input, .. }
            | AlgebraExpr::ToLabels { input, .. }
            | AlgebraExpr::FromLabels { input, .. }
            | AlgebraExpr::Limit { input, .. } => {
                let value = self.eval(input)?;
                **input = AlgebraExpr::literal(value);
            }
            AlgebraExpr::Union { left, right }
            | AlgebraExpr::Difference { left, right }
            | AlgebraExpr::CrossProduct { left, right }
            | AlgebraExpr::Join { left, right, .. } => {
                let left_value = self.eval(left)?;
                let right_value = self.eval(right)?;
                **left = AlgebraExpr::literal(left_value);
                **right = AlgebraExpr::literal(right_value);
            }
        }
        Ok(rewritten)
    }
}

impl Engine for BaselineEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Baseline
    }

    fn execute(&self, expr: &AlgebraExpr) -> DfResult<FrameHandle> {
        // Eager and fully resident, like pandas: the handle is always materialised.
        Ok(FrameHandle::from_dataframe(self.eval(expr)?))
    }

    fn capabilities(&self) -> Capabilities {
        // Pandas row of Table 3: everything except lazy execution.
        Capabilities {
            lazy_execution: false,
            ..Capabilities::full_dataframe()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_core::algebra::{AggFunc, Aggregation, MapFunc, Predicate};
    use df_core::engine::ReferenceEngine;
    use df_types::cell::{cell, Cell};
    use df_types::domain::Domain;

    fn trips() -> DataFrame {
        DataFrame::from_rows(
            vec!["passenger_count", "fare"],
            vec![
                vec![cell(1), cell(10.0)],
                vec![cell(2), cell(20.0)],
                vec![cell(1), cell(30.0)],
                vec![Cell::Null, cell(5.0)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn baseline_agrees_with_reference_on_a_pipeline() {
        let expr = AlgebraExpr::literal(trips())
            .select(Predicate::NotNull {
                column: cell("passenger_count"),
            })
            .group_by(
                vec![cell("passenger_count")],
                vec![Aggregation::count_rows()],
                false,
            );
        let baseline = BaselineEngine::new().execute_collect(&expr).unwrap();
        let reference = ReferenceEngine.execute_collect(&expr).unwrap();
        assert!(baseline.same_data(&reference));
    }

    #[test]
    fn eager_schema_induction_types_results() {
        let raw =
            DataFrame::from_columns(vec!["price"], vec![vec![cell("10"), cell("20")]]).unwrap();
        let out = BaselineEngine::new()
            .execute_collect(&AlgebraExpr::literal(raw))
            .unwrap();
        // The baseline parses raw strings eagerly, so the result is already typed.
        assert_eq!(out.schema(), vec![Some(Domain::Int)]);
        assert_eq!(out.cell(0, 0).unwrap(), &cell(10));
    }

    #[test]
    fn transpose_cap_models_pandas_failure() {
        let big =
            DataFrame::from_columns(vec!["v"], vec![(0..100).map(|i| cell(i as i64)).collect()])
                .unwrap();
        let engine = BaselineEngine::with_config(BaselineConfig {
            max_transpose_cells: Some(50),
            ..BaselineConfig::default()
        });
        let err = engine
            .execute_collect(&AlgebraExpr::literal(big.clone()).transpose())
            .unwrap_err();
        assert!(err.is_resource_exhausted());
        // Below the cap it succeeds.
        let ok = engine
            .execute_collect(&AlgebraExpr::literal(big.head(10)).transpose())
            .unwrap();
        assert_eq!(ok.shape(), (1, 10));
    }

    #[test]
    fn memory_cap_limits_intermediate_results() {
        let engine = BaselineEngine::with_config(BaselineConfig {
            max_cells_in_memory: Some(10),
            ..BaselineConfig::default()
        });
        let left =
            DataFrame::from_columns(vec!["v"], vec![(0..10).map(|i| cell(i as i64)).collect()])
                .unwrap();
        let expr = AlgebraExpr::literal(left.clone()).cross(AlgebraExpr::literal(left));
        let err = engine.execute_collect(&expr).unwrap_err();
        assert!(err.is_resource_exhausted());
    }

    #[test]
    fn unconstrained_config_disables_modelling_overheads() {
        let engine = BaselineEngine::with_config(BaselineConfig::unconstrained());
        assert_eq!(engine.config().max_transpose_cells, None);
        let out = engine
            .execute_collect(&AlgebraExpr::literal(trips()).map(MapFunc::IsNullMask))
            .unwrap();
        assert_eq!(out.cell(3, 0).unwrap(), &cell(true));
    }

    #[test]
    fn capabilities_match_the_pandas_row_of_table3() {
        let caps = BaselineEngine::new().capabilities();
        assert!(caps.ordered_model);
        assert!(caps.eager_execution);
        assert!(!caps.lazy_execution);
        assert!(caps.transpose);
        assert_eq!(BaselineEngine::new().kind(), EngineKind::Baseline);
    }

    #[test]
    fn binary_operators_materialise_both_children() {
        let left = trips();
        let right = trips();
        let expr = AlgebraExpr::literal(left).union(AlgebraExpr::literal(right));
        let out = BaselineEngine::new().execute_collect(&expr).unwrap();
        assert_eq!(out.shape(), (8, 2));
        let agg = Aggregation::of("fare", AggFunc::Sum);
        let total = BaselineEngine::new()
            .execute_collect(&AlgebraExpr::literal(out).group_by(vec![], vec![agg], false))
            .unwrap();
        assert_eq!(total.cell(0, 0).unwrap(), &cell(130.0));
    }

    #[test]
    fn prefix_execution_still_pays_full_materialisation() {
        // The baseline has no prefix-prioritised path: execute_prefix is just a slice
        // of the eager result. This test pins that behaviour (the scalable engine's
        // override is what the §6.1.2 ablation contrasts against).
        let expr = AlgebraExpr::literal(trips()).select(Predicate::True);
        let head = BaselineEngine::new().execute_prefix(&expr, 2).unwrap();
        assert_eq!(head.shape(), (2, 2));
        let tail = BaselineEngine::new().execute_suffix(&expr, 1).unwrap();
        assert_eq!(tail.cell(0, 1).unwrap(), &cell(5.0));
    }
}
