//! The baseline's internal row-major representation.
//!
//! Pandas keeps data in a small number of 2-D blocks and pays repeated consolidation
//! and copy costs as operators run eagerly one after another (paper §1, §3.2). The
//! baseline models that cost profile with an explicit row-major table: every operator
//! converts the columnar [`DataFrame`] into a [`RowTable`] (one `Vec<Cell>` per row),
//! works on the rows, and converts back — paying the same order of data movement that
//! makes the real pandas slow on wide or large frames.

use df_types::cell::Cell;
use df_types::error::DfResult;
use df_types::labels::Labels;

use df_core::dataframe::{Column, DataFrame};

/// A row-major copy of a dataframe.
#[derive(Debug, Clone, PartialEq)]
pub struct RowTable {
    /// Column labels.
    pub col_labels: Vec<Cell>,
    /// Row labels, aligned with `rows`.
    pub row_labels: Vec<Cell>,
    /// Row-major cells.
    pub rows: Vec<Vec<Cell>>,
}

impl RowTable {
    /// Copy a columnar dataframe into row-major form (an O(m·n) clone).
    pub fn from_dataframe(df: &DataFrame) -> RowTable {
        let rows = df.iter_rows().collect();
        RowTable {
            col_labels: df.col_labels().as_slice().to_vec(),
            row_labels: df.row_labels().as_slice().to_vec(),
            rows,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.col_labels.len()
    }

    /// Total number of cells.
    pub fn n_cells(&self) -> usize {
        self.n_rows() * self.n_cols()
    }

    /// Position of a column label.
    pub fn col_position(&self, label: &Cell) -> Option<usize> {
        let key = label.group_key();
        self.col_labels.iter().position(|l| l.group_key() == key)
    }

    /// Copy the row-major table back into a columnar dataframe (another O(m·n) clone).
    pub fn into_dataframe(self) -> DfResult<DataFrame> {
        let n_cols = self.n_cols();
        let mut columns: Vec<Vec<Cell>> = vec![Vec::with_capacity(self.rows.len()); n_cols];
        for row in self.rows {
            for (j, cell) in row.into_iter().enumerate() {
                columns[j].push(cell);
            }
        }
        DataFrame::from_parts(
            columns.into_iter().map(Column::new).collect(),
            Labels::new(self.row_labels),
            Labels::new(self.col_labels),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::cell::cell;

    fn sample() -> DataFrame {
        DataFrame::from_rows(
            vec!["a", "b"],
            vec![vec![cell(1), cell("x")], vec![cell(2), cell("y")]],
        )
        .unwrap()
        .with_row_labels(vec!["r0", "r1"])
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_data_and_labels() {
        let df = sample();
        let table = RowTable::from_dataframe(&df);
        assert_eq!(table.n_rows(), 2);
        assert_eq!(table.n_cols(), 2);
        assert_eq!(table.n_cells(), 4);
        assert_eq!(table.rows[1], vec![cell(2), cell("y")]);
        assert_eq!(table.col_position(&cell("b")), Some(1));
        assert_eq!(table.col_position(&cell("zz")), None);
        let back = table.into_dataframe().unwrap();
        assert!(back.same_data(&df));
    }

    #[test]
    fn empty_frame_round_trips() {
        let df = DataFrame::empty();
        let back = RowTable::from_dataframe(&df).into_dataframe().unwrap();
        assert_eq!(back.shape(), (0, 0));
    }
}
