//! # df-core
//!
//! The formal dataframe data model and kernel algebra of *Towards Scalable Dataframe
//! Systems* (Petersohn et al., VLDB 2020), §4.
//!
//! * [`dataframe`] — the `(A_mn, R_m, C_n, D_n)` data model with a lazily induced
//!   schema (§4.2).
//! * [`algebra`] — the 14-operator kernel algebra of Table 1 as an expression tree,
//!   plus the function vocabulary (predicates, map functions, aggregates, window
//!   functions) the operators are parameterised by (§4.3).
//! * [`columnar`] — typed column blocks ([`columnar::ColumnBlock`]): the columnar
//!   physical form of a partition, hidden behind the `PartitionHandle` narrow waist.
//! * [`ops`] — reference implementations of every operator, defining the semantics all
//!   engines must agree with (plus vectorized columnar fast paths that must match
//!   them cell-for-cell).
//! * [`scan`] — the first-class CSV scan leaf ([`scan::ScanCsv`]) carrying chunk
//!   plans and per-chunk column statistics: the target of the optimizer's
//!   projection/predicate pushdown.
//! * [`cost`] — the cost model: size estimation from leaf shapes and scan
//!   statistics, and the plan rendering behind `explain()`.
//! * [`engine`] — the "narrow waist" [`engine::Engine`] trait and the Table 3
//!   capability matrix.
//! * [`handle`] — the opaque [`handle::FrameHandle`] results that cross the waist:
//!   engine-owned, possibly partitioned/spilled, materialised only at explicit
//!   collection points (§3.3, §6.1).
//! * [`linalg`] — covariance / correlation / matmul over *matrix dataframes* (§4.2).
//!
//! The crate is deliberately free of any parallelism or storage concerns: those live in
//! `df-engine` and `df-storage`. Everything here is the shared vocabulary the rest of
//! the workspace builds on.

pub mod algebra;
pub mod columnar;
pub mod cost;
pub mod dataframe;
pub mod engine;
pub mod handle;
pub mod linalg;
pub mod ops;
pub mod scan;

pub use algebra::AlgebraExpr;
pub use columnar::ColumnBlock;
pub use cost::Estimate;
pub use dataframe::{Column, DataFrame};
pub use engine::{Capabilities, Engine, EngineKind, PushdownSnapshot, ReferenceEngine};
pub use handle::{FrameHandle, FrameSchema, PartitionedResult};
pub use scan::{ScanCsv, ScanOptions, ScanStats};
