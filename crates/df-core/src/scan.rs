//! The first-class CSV scan leaf and its per-chunk statistics.
//!
//! Nearly every pipeline in the paper's workloads (§2, Figure 2) starts with
//! `read_csv`, so the single highest-leverage place for a cost-based optimizer to act
//! is *before* any byte is parsed. [`ScanCsv`] promotes CSV ingest from an engine
//! side-door into an algebra leaf the optimizer can rewrite: it carries the file's
//! chunk plan plus per-chunk column statistics ([`ScanStats`]), a pushed-down
//! *projection* (only referenced columns are parsed and encoded) and a pushed-down
//! sargable *predicate* (whole chunks whose min/max bounds cannot satisfy the
//! predicate are skipped; the survivors evaluate the predicate during the parse loop,
//! before bands are checked into the spill store).
//!
//! The statistics follow the PEXESO shape — block, filter with cheap per-partition
//! summaries, verify only survivors — applied to dataframe ingest: a
//! [`ColumnChunkStats`] is a handful of scalars per column per chunk (null count,
//! numeric min/max, lexical min/max, a capped distinct count), collected during the
//! same pass that already parses the chunk for schema induction, and cached on the
//! scan so repeated statements over the same file pay for them once.
//!
//! Pruning is deliberately conservative: [`chunk_may_match`] returns `false` only
//! when the algebra's `SELECTION` semantics *prove* no row of the chunk can pass.
//! Every uncertain case — NaN literals (the total cell ordering compares NaN equal to
//! every numeric), `Custom` predicates, domains whose cast can manufacture nulls —
//! answers `true` and falls through to row-level evaluation, so pushdown never
//! changes a result, only skips work.
//!
//! ```
//! use df_core::scan::{ScanCsv, ScanOptions};
//! use df_core::algebra::{AlgebraExpr, CmpOp, Predicate};
//! use df_types::cell::cell;
//!
//! let scan = ScanCsv::new("trips.csv", ScanOptions::default(), "csv@trips.csv");
//! let expr = AlgebraExpr::scan_csv(scan).select(Predicate::ColCmp {
//!     column: cell("fare"),
//!     op: CmpOp::Gt,
//!     value: cell(10.0),
//! });
//! assert_eq!(expr.name(), "SELECTION");
//! assert_eq!(expr.children()[0].name(), "SCAN_CSV");
//! ```

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use df_types::cell::Cell;
use df_types::domain::Domain;

use crate::algebra::{CmpOp, Predicate};

/// CSV parsing options carried by a [`ScanCsv`] leaf.
///
/// This mirrors `df-storage`'s `CsvOptions` field-for-field; df-core cannot depend on
/// df-storage (the dependency points the other way), so the scan leaf carries its own
/// copy and the engine translates when it actually opens the file.
///
/// ```
/// use df_core::scan::ScanOptions;
/// let options = ScanOptions::default();
/// assert_eq!(options.delimiter, ',');
/// assert!(options.has_header);
/// assert!(!options.infer_schema);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanOptions {
    /// Field delimiter.
    pub delimiter: char,
    /// Whether the first record is a header row.
    pub has_header: bool,
    /// Whether to run schema induction and cast columns to their induced domains.
    pub infer_schema: bool,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            delimiter: ',',
            has_header: true,
            infer_schema: false,
        }
    }
}

/// Per-column summary statistics for one chunk of a CSV file.
///
/// Collected from the chunk's *parsed* cells (after null-token conversion, before any
/// domain cast): `numeric` bounds cover every non-null cell whose text parses as a
/// finite-or-infinite `f64`; `lexical` bounds cover every string cell. A cell can
/// contribute to both views (the raw text `"5"` is a string *and* parses numerically),
/// which is exactly what makes pruning sound whether or not schema inference later
/// casts the column.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnChunkStats {
    /// Number of null cells (including recognised null tokens such as `"NaN"`).
    pub nulls: usize,
    /// `(min, max)` over cells that parse as non-NaN `f64`; `None` when none do.
    pub numeric: Option<(f64, f64)>,
    /// How many cells parse as non-NaN `f64`.
    pub numeric_count: usize,
    /// `(min, max)` over string cells; `None` when the chunk column has none.
    pub lexical: Option<(String, String)>,
    /// Distinct values seen, capped at [`DISTINCT_CAP`] (a saturated count means "at
    /// least this many").
    pub distinct: usize,
}

/// Cap on the per-chunk distinct-value counter: beyond this a column is treated as
/// effectively unique and the exact count stops mattering for costing.
pub const DISTINCT_CAP: usize = 256;

impl ColumnChunkStats {
    /// Fold one parsed cell into the summary. `distinct_seen` is the caller's
    /// per-column scratch set, kept outside so the stats struct stays plain data.
    pub fn observe(&mut self, cell: &Cell, distinct_seen: &mut Vec<Cell>) {
        if cell.is_null() {
            self.nulls += 1;
        } else {
            if let Some(text) = cell.as_str() {
                self.lexical = Some(match self.lexical.take() {
                    None => (text.to_string(), text.to_string()),
                    Some((lo, hi)) => (
                        if text < lo.as_str() {
                            text.to_string()
                        } else {
                            lo
                        },
                        if text > hi.as_str() {
                            text.to_string()
                        } else {
                            hi
                        },
                    ),
                });
                if let Ok(v) = text.trim().parse::<f64>() {
                    if !v.is_nan() {
                        self.observe_numeric(v);
                    }
                }
            } else if let Some(v) = cell.as_f64() {
                if !v.is_nan() {
                    self.observe_numeric(v);
                }
            }
            if self.distinct < DISTINCT_CAP && !distinct_seen.contains(cell) {
                distinct_seen.push(cell.clone());
                self.distinct = distinct_seen.len();
            }
        }
    }

    fn observe_numeric(&mut self, v: f64) {
        self.numeric_count += 1;
        self.numeric = Some(match self.numeric {
            None => (v, v),
            Some((lo, hi)) => (lo.min(v), hi.max(v)),
        });
    }
}

/// Statistics and plan for one chunk of the file: the byte range and row range (the
/// chunk plan, so the engine can re-seek without re-planning) plus one
/// [`ColumnChunkStats`] per file column.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkStats {
    /// First byte of the chunk's data records.
    pub start_byte: u64,
    /// One past the last byte of the chunk.
    pub end_byte: u64,
    /// Global rank of the chunk's first data row.
    pub start_row: usize,
    /// Number of data rows in the chunk.
    pub rows: usize,
    /// Per-column summaries, aligned with the file's column order.
    pub columns: Vec<ColumnChunkStats>,
}

/// Whole-file scan statistics: the induction-time facts the cost model and the
/// pruning pass consume (row counts, per-column min/max, distinct caps, null counts —
/// the "per-band `InductionSummary`" of the paper's metadata-driven rewrites, §5.1).
///
/// ```
/// use df_core::scan::{ChunkStats, ColumnChunkStats, ScanStats};
/// use df_types::cell::cell;
///
/// let stats = ScanStats {
///     labels: vec![cell("a")],
///     n_cols: 1,
///     total_rows: 10,
///     total_bytes: 80,
///     domains: None,
///     chunks: vec![ChunkStats {
///         start_byte: 2,
///         end_byte: 82,
///         start_row: 0,
///         rows: 10,
///         columns: vec![ColumnChunkStats::default()],
///     }],
/// };
/// assert_eq!(stats.chunks.len(), 1);
/// assert_eq!(stats.bytes_per_row(), 8.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScanStats {
    /// Column labels of the file, in file order.
    pub labels: Vec<Cell>,
    /// Number of file columns.
    pub n_cols: usize,
    /// Total data rows.
    pub total_rows: usize,
    /// Total data bytes (excluding the header record).
    pub total_bytes: u64,
    /// Reconciled per-column domains when the scan ran schema induction; `None` when
    /// inference is off (every data cell is then a string or a null token).
    pub domains: Option<Vec<Domain>>,
    /// Per-chunk plans and summaries, in file order.
    pub chunks: Vec<ChunkStats>,
}

impl ScanStats {
    /// Average encoded bytes per data row (for sizing estimates).
    pub fn bytes_per_row(&self) -> f64 {
        if self.total_rows == 0 {
            0.0
        } else {
            self.total_bytes as f64 / self.total_rows as f64
        }
    }

    /// Position of a label in the file's column order.
    pub fn col_position(&self, label: &Cell) -> Option<usize> {
        self.labels.iter().position(|l| l == label)
    }

    /// Which chunks could contain a row matching `pred` (all of them for `None`),
    /// with the survivor count paired with the total.
    pub fn surviving_chunks(&self, pred: Option<&Predicate>) -> Vec<&ChunkStats> {
        match pred {
            None => self.chunks.iter().collect(),
            Some(pred) => self
                .chunks
                .iter()
                .filter(|chunk| chunk_may_match(pred, chunk, &self.labels, self.domains.as_deref()))
                .collect(),
        }
    }
}

/// The CSV scan leaf: a path, parse options, and the pushdowns the optimizer has
/// folded into it. Cloning shares the cached statistics (they live behind
/// `Arc<OnceLock<..>>`), so a rewritten plan reuses the stats collected for the
/// original leaf.
#[derive(Clone)]
pub struct ScanCsv {
    /// File to scan.
    pub path: PathBuf,
    /// Parse options.
    pub options: ScanOptions,
    /// Pushed-down projection: output columns, in output order. `None` scans every
    /// column.
    pub projection: Option<Vec<Cell>>,
    /// Pushed-down predicate, evaluated during the parse loop (after chunk pruning).
    pub predicate: Option<Predicate>,
    /// Stable identity used in plan fingerprints: the session's content-based CSV
    /// statement key (path + options + file mtime/size), so two scans of the same
    /// on-disk state share cache entries and two different states do not.
    identity: String,
    stats: Arc<OnceLock<Arc<ScanStats>>>,
}

impl ScanCsv {
    /// A scan of every column of `path` with no predicate.
    pub fn new(path: impl AsRef<Path>, options: ScanOptions, identity: impl Into<String>) -> Self {
        ScanCsv {
            path: path.as_ref().to_path_buf(),
            options,
            projection: None,
            predicate: None,
            identity: identity.into(),
            stats: Arc::new(OnceLock::new()),
        }
    }

    /// The scan's stable identity (used in fingerprints and stats caches).
    pub fn identity(&self) -> &str {
        &self.identity
    }

    /// This scan with a projection pushed into it (stats still shared).
    pub fn with_projection(&self, columns: Vec<Cell>) -> Self {
        let mut scan = self.clone();
        scan.projection = Some(columns);
        scan
    }

    /// This scan with a predicate pushed into it (stats still shared).
    pub fn with_predicate(&self, predicate: Predicate) -> Self {
        let mut scan = self.clone();
        scan.predicate = Some(predicate);
        scan
    }

    /// The cached file statistics, if an engine has collected them.
    pub fn stats(&self) -> Option<Arc<ScanStats>> {
        self.stats.get().cloned()
    }

    /// Cache file statistics on the leaf (first write wins; clones share them).
    pub fn set_stats(&self, stats: Arc<ScanStats>) {
        let _ = self.stats.set(stats);
    }

    /// Fingerprint fragment: identity plus the pushdowns (content-based, unlike the
    /// pointer-identity used for literal leaves, so equal scans of the same file
    /// state dedupe in the statement cache).
    pub fn fingerprint_fragment(&self) -> String {
        format!(
            "scan[{};proj={:?};pred={:?}]",
            self.identity, self.projection, self.predicate
        )
    }
}

impl fmt::Debug for ScanCsv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScanCsv")
            .field("path", &self.path)
            .field("options", &self.options)
            .field("projection", &self.projection)
            .field("predicate", &self.predicate)
            .field("has_stats", &self.stats.get().is_some())
            .finish()
    }
}

/// Could any row of `chunk` satisfy `pred`? `false` is a *proof* of emptiness under
/// the algebra's SELECTION semantics (null comparisons are false, missing columns are
/// false); `true` means "cannot rule it out — parse and evaluate row-by-row".
///
/// `domains` are the reconciled induction domains when the scan casts columns
/// (inference on), `None` when every data cell stays a string/null.
///
/// ```
/// use df_core::scan::{chunk_may_match, ChunkStats, ColumnChunkStats};
/// use df_core::algebra::{CmpOp, Predicate};
/// use df_types::cell::cell;
/// use df_types::domain::Domain;
///
/// let chunk = ChunkStats {
///     start_byte: 0,
///     end_byte: 100,
///     start_row: 0,
///     rows: 4,
///     columns: vec![ColumnChunkStats {
///         nulls: 0,
///         numeric: Some((10.0, 20.0)),
///         numeric_count: 4,
///         lexical: Some(("10".into(), "20".into())),
///         distinct: 4,
///     }],
/// };
/// let labels = [cell("x")];
/// let gt = |v: f64| Predicate::ColCmp { column: cell("x"), op: CmpOp::Gt, value: cell(v) };
/// // max is 20, so `x > 25` provably matches nothing…
/// assert!(!chunk_may_match(&gt(25.0), &chunk, &labels, Some(&[Domain::Int])));
/// // …while `x > 15` might.
/// assert!(chunk_may_match(&gt(15.0), &chunk, &labels, Some(&[Domain::Int])));
/// ```
pub fn chunk_may_match(
    pred: &Predicate,
    chunk: &ChunkStats,
    labels: &[Cell],
    domains: Option<&[Domain]>,
) -> bool {
    match pred {
        Predicate::True => true,
        Predicate::And(a, b) => {
            chunk_may_match(a, chunk, labels, domains) && chunk_may_match(b, chunk, labels, domains)
        }
        Predicate::Or(a, b) => {
            chunk_may_match(a, chunk, labels, domains) || chunk_may_match(b, chunk, labels, domains)
        }
        Predicate::ColCmp { column, op, value } => {
            let Some(idx) = labels.iter().position(|l| l == column) else {
                // SELECTION on a missing column matches nothing.
                return false;
            };
            let Some(col) = chunk.columns.get(idx) else {
                return true;
            };
            if value.is_null() {
                // Comparisons against null are false for every row.
                return false;
            }
            if col.nulls >= chunk.rows {
                // Every cell is null; null comparisons are false.
                return false;
            }
            match domains.and_then(|d| d.get(idx)) {
                Some(Domain::Int) | Some(Domain::Float) => {
                    // After the cast, every non-null cell is numeric. Only a non-NaN
                    // numeric literal admits interval reasoning (the total ordering
                    // treats a NaN literal as *equal* to every numeric, so NaN must
                    // stay conservative).
                    let literal = match value {
                        Cell::Int(v) => Some(*v as f64),
                        Cell::Float(v) if !v.is_nan() => Some(*v),
                        _ => None,
                    };
                    match literal {
                        Some(v) => {
                            if col.numeric_count == 0 {
                                // Every non-null raw cell fails even the f64 parse, so
                                // the cast nulls them all and the comparison is false.
                                return false;
                            }
                            match col.numeric {
                                Some((lo, hi)) => interval_may_match(*op, lo, hi, v),
                                None => true,
                            }
                        }
                        None => true,
                    }
                }
                // Uninferred scans keep every cell a string, so lexical bounds are
                // complete; an induced Str domain is the same situation.
                None | Some(Domain::Str) => match value.as_str() {
                    Some(text) => match &col.lexical {
                        Some((lo, hi)) => {
                            lexical_interval_may_match(*op, lo.as_str(), hi.as_str(), text)
                        }
                        None => true,
                    },
                    None => true,
                },
                // Bool / DateTime / Category / Composite casts: stay conservative.
                _ => true,
            }
        }
        Predicate::IsNull { column } => {
            let Some(idx) = labels.iter().position(|l| l == column) else {
                return false;
            };
            let Some(col) = chunk.columns.get(idx) else {
                return true;
            };
            if col.nulls > 0 {
                return true;
            }
            // No raw nulls. Without a cast no null can appear; a Str "cast" keeps
            // cells verbatim. Any other cast can null unparseable cells, so those
            // stay conservative.
            !matches!(domains.and_then(|d| d.get(idx)), None | Some(Domain::Str))
        }
        Predicate::NotNull { column } => {
            let Some(idx) = labels.iter().position(|l| l == column) else {
                return false;
            };
            let Some(col) = chunk.columns.get(idx) else {
                return true;
            };
            if col.nulls >= chunk.rows {
                return false;
            }
            match domains.and_then(|d| d.get(idx)) {
                // If nothing parses even as f64, the stricter Int/Float casts null
                // every cell: NotNull matches nothing.
                Some(Domain::Int) | Some(Domain::Float) if col.numeric_count == 0 => false,
                _ => true,
            }
        }
        // Positional predicates, negation and opaque UDFs: never prune.
        Predicate::PositionRange { .. } | Predicate::Not(_) | Predicate::Custom { .. } => true,
    }
}

/// Interval test: can a value in `[lo, hi]` satisfy `op` against `v`?
fn interval_may_match(op: CmpOp, lo: f64, hi: f64, v: f64) -> bool {
    match op {
        CmpOp::Eq => lo <= v && v <= hi,
        // Ne is unsatisfiable only when every value equals the literal.
        CmpOp::Ne => !(lo == hi && lo == v),
        CmpOp::Lt => lo < v,
        CmpOp::Le => lo <= v,
        CmpOp::Gt => hi > v,
        CmpOp::Ge => hi >= v,
    }
}

/// The lexicographic mirror of [`interval_may_match`].
fn lexical_interval_may_match(op: CmpOp, lo: &str, hi: &str, v: &str) -> bool {
    match op {
        CmpOp::Eq => lo <= v && v <= hi,
        CmpOp::Ne => !(lo == hi && lo == v),
        CmpOp::Lt => lo < v,
        CmpOp::Le => lo <= v,
        CmpOp::Gt => hi > v,
        CmpOp::Ge => hi >= v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::cell::cell;

    fn chunk(columns: Vec<ColumnChunkStats>, rows: usize) -> ChunkStats {
        ChunkStats {
            start_byte: 0,
            end_byte: 1,
            start_row: 0,
            rows,
            columns,
        }
    }

    fn numeric_col(lo: f64, hi: f64, count: usize, nulls: usize) -> ColumnChunkStats {
        ColumnChunkStats {
            nulls,
            numeric: Some((lo, hi)),
            numeric_count: count,
            lexical: Some((format!("{lo}"), format!("{hi}"))),
            distinct: count.min(DISTINCT_CAP),
        }
    }

    fn cmp(op: CmpOp, value: Cell) -> Predicate {
        Predicate::ColCmp {
            column: cell("x"),
            op,
            value,
        }
    }

    #[test]
    fn observe_tracks_bounds_nulls_and_distincts() {
        let mut stats = ColumnChunkStats::default();
        let mut seen = Vec::new();
        for raw in ["5", "12", "5", "zebra"] {
            stats.observe(&cell(raw), &mut seen);
        }
        stats.observe(&Cell::Null, &mut seen);
        assert_eq!(stats.nulls, 1);
        assert_eq!(stats.numeric, Some((5.0, 12.0)));
        assert_eq!(stats.numeric_count, 3);
        assert_eq!(stats.lexical, Some(("12".to_string(), "zebra".to_string())));
        assert_eq!(stats.distinct, 3);
    }

    #[test]
    fn numeric_interval_pruning_is_exact_on_the_boundaries() {
        let labels = [cell("x")];
        let domains = [Domain::Float];
        let c = chunk(vec![numeric_col(10.0, 20.0, 4, 0)], 4);
        let may = |p: &Predicate| chunk_may_match(p, &c, &labels, Some(&domains));
        assert!(may(&cmp(CmpOp::Eq, cell(10.0))));
        assert!(may(&cmp(CmpOp::Eq, cell(20.0))));
        assert!(!may(&cmp(CmpOp::Eq, cell(9.999))));
        assert!(!may(&cmp(CmpOp::Eq, cell(20.001))));
        assert!(!may(&cmp(CmpOp::Lt, cell(10.0))));
        assert!(may(&cmp(CmpOp::Le, cell(10.0))));
        assert!(!may(&cmp(CmpOp::Gt, cell(20.0))));
        assert!(may(&cmp(CmpOp::Ge, cell(20.0))));
        assert!(may(&cmp(CmpOp::Ne, cell(15.0))));
        let constant = chunk(vec![numeric_col(7.0, 7.0, 3, 0)], 3);
        assert!(!chunk_may_match(
            &cmp(CmpOp::Ne, cell(7.0)),
            &constant,
            &labels,
            Some(&domains)
        ));
    }

    #[test]
    fn nan_literals_and_null_literals_stay_conservative_or_false() {
        let labels = [cell("x")];
        let domains = [Domain::Float];
        let c = chunk(vec![numeric_col(10.0, 20.0, 4, 0)], 4);
        // NaN compares Equal to every numeric under the total ordering: never prune.
        assert!(chunk_may_match(
            &cmp(CmpOp::Eq, cell(f64::NAN)),
            &c,
            &labels,
            Some(&domains)
        ));
        // Comparisons against a null literal match no row at all.
        assert!(!chunk_may_match(
            &cmp(CmpOp::Eq, Cell::Null),
            &c,
            &labels,
            None
        ));
    }

    #[test]
    fn missing_columns_and_all_null_chunks_prune_to_false() {
        let labels = [cell("x")];
        let missing = Predicate::ColCmp {
            column: cell("nope"),
            op: CmpOp::Eq,
            value: cell(1),
        };
        let c = chunk(vec![numeric_col(0.0, 1.0, 2, 0)], 2);
        assert!(!chunk_may_match(&missing, &c, &labels, None));
        assert!(!chunk_may_match(
            &Predicate::IsNull {
                column: cell("nope")
            },
            &c,
            &labels,
            None
        ));
        let all_null = chunk(
            vec![ColumnChunkStats {
                nulls: 3,
                ..ColumnChunkStats::default()
            }],
            3,
        );
        assert!(!chunk_may_match(
            &cmp(CmpOp::Eq, cell(1)),
            &all_null,
            &labels,
            None
        ));
        assert!(!chunk_may_match(
            &Predicate::NotNull { column: cell("x") },
            &all_null,
            &labels,
            None
        ));
    }

    #[test]
    fn null_predicates_respect_cast_produced_nulls() {
        let labels = [cell("x")];
        let clean = chunk(vec![numeric_col(1.0, 2.0, 2, 0)], 2);
        let is_null = Predicate::IsNull { column: cell("x") };
        // No raw nulls + no cast (or a Str cast): provably no null.
        assert!(!chunk_may_match(&is_null, &clean, &labels, None));
        assert!(!chunk_may_match(
            &is_null,
            &clean,
            &labels,
            Some(&[Domain::Str])
        ));
        // An Int cast can null unparseable cells: conservative.
        assert!(chunk_may_match(
            &is_null,
            &clean,
            &labels,
            Some(&[Domain::Int])
        ));
        // A column where nothing parses numerically under a numeric cast: NotNull
        // provably matches nothing.
        let words = chunk(
            vec![ColumnChunkStats {
                nulls: 0,
                numeric: None,
                numeric_count: 0,
                lexical: Some(("a".into(), "z".into())),
                distinct: 2,
            }],
            2,
        );
        assert!(!chunk_may_match(
            &Predicate::NotNull { column: cell("x") },
            &words,
            &labels,
            Some(&[Domain::Float])
        ));
        assert!(!chunk_may_match(
            &cmp(CmpOp::Gt, cell(0)),
            &words,
            &labels,
            Some(&[Domain::Float])
        ));
    }

    #[test]
    fn lexical_pruning_only_fires_for_string_literals_on_string_domains() {
        let labels = [cell("x")];
        let c = chunk(
            vec![ColumnChunkStats {
                nulls: 0,
                numeric: None,
                numeric_count: 0,
                lexical: Some(("apple".into(), "mango".into())),
                distinct: 5,
            }],
            5,
        );
        let eq_z = cmp(CmpOp::Eq, cell("zebra"));
        assert!(!chunk_may_match(&eq_z, &c, &labels, None));
        assert!(!chunk_may_match(&eq_z, &c, &labels, Some(&[Domain::Str])));
        assert!(chunk_may_match(
            &cmp(CmpOp::Eq, cell("banana")),
            &c,
            &labels,
            None
        ));
        // Category/DateTime casts stay conservative even for string literals.
        assert!(chunk_may_match(
            &eq_z,
            &c,
            &labels,
            Some(&[Domain::Category])
        ));
        // Numeric literal against a string domain: conservative.
        assert!(chunk_may_match(&cmp(CmpOp::Eq, cell(3)), &c, &labels, None));
    }

    #[test]
    fn boolean_combinators_compose_and_opaque_predicates_never_prune() {
        let labels = [cell("x")];
        let domains = [Domain::Int];
        let c = chunk(vec![numeric_col(0.0, 9.0, 10, 0)], 10);
        let hit = cmp(CmpOp::Lt, cell(5));
        let miss = cmp(CmpOp::Gt, cell(100));
        let and_miss = Predicate::And(Box::new(hit.clone()), Box::new(miss.clone()));
        assert!(!chunk_may_match(&and_miss, &c, &labels, Some(&domains)));
        let or_hit = Predicate::Or(Box::new(miss.clone()), Box::new(hit));
        assert!(chunk_may_match(&or_hit, &c, &labels, Some(&domains)));
        assert!(chunk_may_match(
            &Predicate::Not(Box::new(miss.clone())),
            &c,
            &labels,
            Some(&domains)
        ));
        assert!(chunk_may_match(
            &Predicate::PositionRange { start: 0, end: 0 },
            &c,
            &labels,
            Some(&domains)
        ));
        assert!(chunk_may_match(
            &Predicate::Custom {
                name: "opaque".into(),
                func: std::sync::Arc::new(|_| false),
            },
            &c,
            &labels,
            Some(&domains)
        ));
    }

    #[test]
    fn scan_clones_share_cached_stats() {
        let scan = ScanCsv::new("f.csv", ScanOptions::default(), "csv@f");
        let filtered = scan.with_predicate(Predicate::True);
        assert!(filtered.stats().is_none());
        scan.set_stats(Arc::new(ScanStats {
            labels: vec![cell("a")],
            n_cols: 1,
            total_rows: 3,
            total_bytes: 12,
            domains: None,
            chunks: vec![],
        }));
        assert_eq!(filtered.stats().unwrap().total_rows, 3);
        assert_ne!(scan.fingerprint_fragment(), filtered.fingerprint_fragment());
        let projected = scan.with_projection(vec![cell("a")]);
        assert_eq!(projected.projection.as_deref(), Some(&[cell("a")][..]));
    }

    #[test]
    fn surviving_chunks_counts_skips() {
        let stats = ScanStats {
            labels: vec![cell("x")],
            n_cols: 1,
            total_rows: 8,
            total_bytes: 64,
            domains: Some(vec![Domain::Int]),
            chunks: vec![
                chunk(vec![numeric_col(0.0, 3.0, 4, 0)], 4),
                chunk(vec![numeric_col(4.0, 7.0, 4, 0)], 4),
            ],
        };
        assert_eq!(stats.surviving_chunks(None).len(), 2);
        let pred = cmp(CmpOp::Ge, cell(6));
        assert_eq!(stats.surviving_chunks(Some(&pred)).len(), 1);
        assert_eq!(stats.bytes_per_row(), 8.0);
        assert_eq!(stats.col_position(&cell("x")), Some(0));
        assert_eq!(stats.col_position(&cell("y")), None);
    }
}
