//! The cost model behind the adaptive optimizer and `explain()`.
//!
//! Paper §5.1 argues that dataframe rewrites should be driven by cheap metadata
//! rather than full statistics machinery. This module is that cost model: a small,
//! documented set of estimation rules mapping an [`AlgebraExpr`] to an [`Estimate`]
//! of output rows / columns / bytes, derived from the facts the system already has
//! for free — literal and handle shapes at the leaves, [`ScanStats`](crate::scan::ScanStats) chunk summaries
//! on scan leaves, and fixed selectivity factors for predicates.
//!
//! The estimation rules (all deliberately simple and stated here so `explain()`
//! output is auditable):
//!
//! | node | rows | cols |
//! |------|------|------|
//! | `LITERAL` / `HANDLE` | actual shape | actual shape |
//! | `SCAN_CSV` | surviving-chunk rows × selectivity(pred) | projection width |
//! | `SELECTION` | input × selectivity(pred) | input |
//! | `PROJECTION` | input | selector width |
//! | `UNION` | sum | left |
//! | `DIFFERENCE` | left (upper bound) | left |
//! | `CROSS_PRODUCT` | product | sum |
//! | `JOIN` | max(left, right) | sum |
//! | `GROUPBY` | √input (heuristic) | keys + aggs |
//! | `DROP_DUPLICATES` / `SORT` / `RENAME` / `WINDOW` / `MAP` | input | input |
//! | `TRANSPOSE` | input cols | input rows |
//! | `LIMIT` | min(k, input) | input |
//!
//! Selectivity factors: `=` and `IsNull` 10%, `≠` and `NotNull` 90%, inequalities ⅓,
//! `AND` multiplies, `OR` adds with the inclusion–exclusion correction, `NOT`
//! complements, opaque predicates 50%. Bytes scale proportionally from the input's
//! bytes-per-cell. None of this aims at database-grade precision — it only has to be
//! good enough to rank alternatives (broadcast vs shuffle, prune vs parse), and every
//! decision it drives is surfaced by `explain()` so a wrong guess is visible.
//!
//! ```
//! use df_core::algebra::{AlgebraExpr, CmpOp, Predicate};
//! use df_core::cost::{estimate, render_plan};
//! use df_core::dataframe::DataFrame;
//! use df_types::cell::cell;
//!
//! let df = DataFrame::from_rows(
//!     vec!["a"],
//!     (0..100).map(|i| vec![cell(i)]).collect(),
//! ).unwrap();
//! let expr = AlgebraExpr::literal(df).select(Predicate::ColCmp {
//!     column: cell("a"),
//!     op: CmpOp::Eq,
//!     value: cell(7),
//! });
//! let est = estimate(&expr).unwrap();
//! assert_eq!(est.rows.round() as i64, 10); // 100 rows × 10% equality selectivity
//! let plan = render_plan(&expr);
//! assert!(plan.contains("SELECTION"));
//! assert!(plan.contains("~10 rows"));
//! ```

use crate::algebra::{AlgebraExpr, ColumnSelector, Predicate};
use crate::scan::ScanCsv;

/// Estimated output size of a plan node. All fields are estimates in the statistical
/// sense — fractional rows are meaningful ("0.4 expected matches") and only rounded
/// for display.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Expected output rows.
    pub rows: f64,
    /// Expected output columns.
    pub cols: f64,
    /// Expected output payload bytes.
    pub bytes: f64,
}

impl Estimate {
    fn bytes_per_cell(&self) -> f64 {
        let cells = self.rows * self.cols;
        if cells > 0.0 {
            self.bytes / cells
        } else {
            DEFAULT_CELL_BYTES
        }
    }

    fn resized(&self, rows: f64, cols: f64) -> Estimate {
        Estimate {
            rows,
            cols,
            bytes: rows * cols * self.bytes_per_cell(),
        }
    }
}

/// Bytes-per-cell assumed when a leaf reports no payload size of its own.
pub const DEFAULT_CELL_BYTES: f64 = 16.0;

/// Fraction of rows an equality (or `IsNull`) predicate is assumed to keep.
pub const EQ_SELECTIVITY: f64 = 0.10;
/// Fraction of rows an inequality comparison (`<`, `≤`, `>`, `≥`) is assumed to keep.
pub const RANGE_SELECTIVITY: f64 = 1.0 / 3.0;
/// Fraction of rows an opaque (`Custom`) predicate is assumed to keep.
pub const OPAQUE_SELECTIVITY: f64 = 0.50;

/// Estimated fraction of rows `pred` keeps (the fixed factors documented in the
/// module header).
pub fn selectivity(pred: &Predicate) -> f64 {
    use crate::algebra::CmpOp;
    match pred {
        Predicate::True => 1.0,
        Predicate::ColCmp { op, .. } => match op {
            CmpOp::Eq => EQ_SELECTIVITY,
            CmpOp::Ne => 1.0 - EQ_SELECTIVITY,
            _ => RANGE_SELECTIVITY,
        },
        Predicate::IsNull { .. } => EQ_SELECTIVITY,
        Predicate::NotNull { .. } => 1.0 - EQ_SELECTIVITY,
        Predicate::PositionRange { .. } => 1.0,
        Predicate::Not(inner) => 1.0 - selectivity(inner),
        Predicate::And(a, b) => selectivity(a) * selectivity(b),
        Predicate::Or(a, b) => {
            let (sa, sb) = (selectivity(a), selectivity(b));
            sa + sb - sa * sb
        }
        Predicate::Custom { .. } => OPAQUE_SELECTIVITY,
    }
}

/// Estimate a scan leaf's output from its cached statistics: rows that survive chunk
/// pruning, scaled by the residual predicate's selectivity, over the projected
/// column fraction. `None` until an engine has collected [`crate::scan::ScanStats`].
pub fn estimate_scan(scan: &ScanCsv) -> Option<Estimate> {
    let stats = scan.stats()?;
    let surviving_rows: usize = stats
        .surviving_chunks(scan.predicate.as_ref())
        .iter()
        .map(|c| c.rows)
        .sum();
    let sel = scan.predicate.as_ref().map(selectivity).unwrap_or(1.0);
    let cols = scan
        .projection
        .as_ref()
        .map(|p| p.len())
        .unwrap_or(stats.n_cols);
    let col_fraction = if stats.n_cols > 0 {
        cols as f64 / stats.n_cols as f64
    } else {
        1.0
    };
    let rows = surviving_rows as f64 * sel;
    Some(Estimate {
        rows,
        cols: cols as f64,
        bytes: rows * stats.bytes_per_row() * col_fraction,
    })
}

/// Estimate the output size of a plan node, bottom-up. `None` when a leaf offers no
/// size information (e.g. a scan whose statistics have not been collected yet) —
/// callers fall back to non-statistical defaults.
pub fn estimate(expr: &AlgebraExpr) -> Option<Estimate> {
    match expr {
        AlgebraExpr::Literal(df) => {
            let (rows, cols) = df.shape();
            Some(Estimate {
                rows: rows as f64,
                cols: cols as f64,
                bytes: df.approx_size_bytes() as f64,
            })
        }
        AlgebraExpr::Handle(handle) => {
            let (rows, cols) = handle.shape();
            Some(Estimate {
                rows: rows as f64,
                cols: cols as f64,
                bytes: rows as f64 * cols as f64 * DEFAULT_CELL_BYTES,
            })
        }
        AlgebraExpr::ScanCsv(scan) => estimate_scan(scan),
        AlgebraExpr::Selection { input, predicate } => {
            let input = estimate(input)?;
            Some(input.resized(input.rows * selectivity(predicate), input.cols))
        }
        AlgebraExpr::Projection { input, columns } => {
            let input = estimate(input)?;
            let cols = selector_width(columns, input.cols);
            Some(input.resized(input.rows, cols))
        }
        AlgebraExpr::Union { left, right } => {
            let (l, r) = (estimate(left)?, estimate(right)?);
            Some(Estimate {
                rows: l.rows + r.rows,
                cols: l.cols,
                bytes: l.bytes + r.bytes,
            })
        }
        AlgebraExpr::Difference { left, right: _ } => estimate(left),
        AlgebraExpr::CrossProduct { left, right } => {
            let (l, r) = (estimate(left)?, estimate(right)?);
            Some(Estimate {
                rows: l.rows * r.rows,
                cols: l.cols + r.cols,
                bytes: l.bytes * r.rows.max(1.0) + r.bytes * l.rows.max(1.0),
            })
        }
        AlgebraExpr::Join { left, right, .. } => {
            let (l, r) = (estimate(left)?, estimate(right)?);
            Some(Estimate {
                rows: l.rows.max(r.rows),
                cols: l.cols + r.cols,
                bytes: l.bytes + r.bytes,
            })
        }
        AlgebraExpr::DropDuplicates { input }
        | AlgebraExpr::Sort { input, .. }
        | AlgebraExpr::Rename { input, .. }
        | AlgebraExpr::Window { input, .. }
        | AlgebraExpr::Map { input, .. } => estimate(input),
        AlgebraExpr::GroupBy {
            input, keys, aggs, ..
        } => {
            let input = estimate(input)?;
            let groups = input.rows.sqrt().max(1.0).min(input.rows);
            let cols = (keys.len() + aggs.len()) as f64;
            Some(input.resized(groups, cols.max(1.0)))
        }
        AlgebraExpr::Transpose { input } => {
            let input = estimate(input)?;
            Some(Estimate {
                rows: input.cols,
                cols: input.rows,
                bytes: input.bytes,
            })
        }
        AlgebraExpr::ToLabels { input, .. } => {
            let input = estimate(input)?;
            Some(input.resized(input.rows, (input.cols - 1.0).max(0.0)))
        }
        AlgebraExpr::FromLabels { input, .. } => {
            let input = estimate(input)?;
            Some(input.resized(input.rows, input.cols + 1.0))
        }
        AlgebraExpr::Limit { input, k, .. } => {
            let input = estimate(input)?;
            Some(input.resized(input.rows.min(*k as f64), input.cols))
        }
    }
}

fn selector_width(selector: &ColumnSelector, input_cols: f64) -> f64 {
    match selector {
        ColumnSelector::All => input_cols,
        ColumnSelector::ByLabels(labels) => labels.len() as f64,
        ColumnSelector::ByPositions(positions) => positions.len() as f64,
        ColumnSelector::Numeric => (input_cols / 2.0).max(1.0),
        ColumnSelector::Excluding(labels) => (input_cols - labels.len() as f64).max(0.0),
    }
}

/// Render a plan as an indented tree, one node per line, annotated with the cost
/// model's row/byte estimates where they are available. This is the default
/// `Engine::explain` body; engines with their own optimizer prepend the rewritten
/// plan and the rewrites that fired.
pub fn render_plan(expr: &AlgebraExpr) -> String {
    let mut out = String::new();
    render_node(expr, 0, &mut out);
    out
}

fn render_node(expr: &AlgebraExpr, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(expr.name());
    let detail = node_detail(expr);
    if !detail.is_empty() {
        out.push(' ');
        out.push_str(&detail);
    }
    if let Some(est) = estimate(expr) {
        out.push_str(&format!(
            "  [~{} rows × {} cols, ~{}]",
            est.rows.round() as u64,
            est.cols.round() as u64,
            human_bytes(est.bytes)
        ));
    }
    out.push('\n');
    for child in expr.children() {
        render_node(child, depth + 1, out);
    }
}

fn node_detail(expr: &AlgebraExpr) -> String {
    match expr {
        AlgebraExpr::ScanCsv(scan) => {
            // Only the file name: explain() output is asserted by doctests, which
            // must not depend on temp-directory paths.
            let file = scan
                .path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| scan.path.display().to_string());
            let mut detail = file;
            if let Some(projection) = &scan.projection {
                detail.push_str(&format!(" project⇩{projection:?}"));
            }
            if let Some(predicate) = &scan.predicate {
                detail.push_str(&format!(" filter⇩[{predicate:?}]"));
            }
            if let Some(stats) = scan.stats() {
                let survivors = stats.surviving_chunks(scan.predicate.as_ref()).len();
                detail.push_str(&format!(" ({}/{} chunks)", survivors, stats.chunks.len()));
            }
            detail
        }
        AlgebraExpr::Selection { predicate, .. } => format!("[{predicate:?}]"),
        AlgebraExpr::Projection { columns, .. } => format!("[{columns:?}]"),
        AlgebraExpr::Join { on, how, .. } => format!("[{on:?}, {how:?}]"),
        AlgebraExpr::GroupBy { keys, aggs, .. } => {
            format!("[{} keys, {} aggs]", keys.len(), aggs.len())
        }
        AlgebraExpr::Sort { spec, .. } => format!("[by {:?}]", spec.by),
        AlgebraExpr::Rename { mapping, .. } => format!("[{} columns]", mapping.len()),
        AlgebraExpr::Window { func, .. } => format!("[{func:?}]"),
        AlgebraExpr::Map { func, .. } => format!("[{func:?}]"),
        AlgebraExpr::ToLabels { column, .. } => format!("[{column}]"),
        AlgebraExpr::FromLabels { new_column, .. } => format!("[{new_column}]"),
        AlgebraExpr::Limit { k, from_end, .. } => {
            format!("[{}{k}]", if *from_end { "last " } else { "first " })
        }
        _ => String::new(),
    }
}

/// Render a byte count with a binary-unit suffix.
pub fn human_bytes(bytes: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes.max(0.0);
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{} {}", value.round() as u64, UNITS[unit])
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{CmpOp, JoinOn, JoinType};
    use crate::dataframe::DataFrame;
    use crate::scan::{ChunkStats, ColumnChunkStats, ScanOptions, ScanStats};
    use df_types::cell::cell;
    use std::sync::Arc;

    fn frame(rows: usize, cols: usize) -> DataFrame {
        let columns: Vec<Vec<df_types::cell::Cell>> = (0..cols)
            .map(|j| (0..rows).map(|i| cell((i * cols + j) as i64)).collect())
            .collect();
        let labels: Vec<String> = (0..cols).map(|j| format!("c{j}")).collect();
        DataFrame::from_columns(labels, columns).unwrap()
    }

    #[test]
    fn selectivities_compose() {
        let eq = Predicate::ColCmp {
            column: cell("a"),
            op: CmpOp::Eq,
            value: cell(1),
        };
        let gt = Predicate::ColCmp {
            column: cell("a"),
            op: CmpOp::Gt,
            value: cell(1),
        };
        assert!((selectivity(&eq) - 0.1).abs() < 1e-9);
        assert!((selectivity(&gt) - 1.0 / 3.0).abs() < 1e-9);
        let and = Predicate::And(Box::new(eq.clone()), Box::new(gt.clone()));
        assert!((selectivity(&and) - 0.1 / 3.0).abs() < 1e-9);
        let or = Predicate::Or(Box::new(eq.clone()), Box::new(gt));
        assert!((selectivity(&or) - (0.1 + 1.0 / 3.0 - 0.1 / 3.0)).abs() < 1e-9);
        let not = Predicate::Not(Box::new(eq));
        assert!((selectivity(&not) - 0.9).abs() < 1e-9);
        assert!((selectivity(&Predicate::True) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn estimates_follow_the_documented_rules() {
        let base = AlgebraExpr::literal(frame(100, 4));
        let est = estimate(&base).unwrap();
        assert_eq!(est.rows, 100.0);
        assert_eq!(est.cols, 4.0);
        let selected = estimate(&base.clone().select(Predicate::ColCmp {
            column: cell("c0"),
            op: CmpOp::Eq,
            value: cell(1),
        }))
        .unwrap();
        assert!((selected.rows - 10.0).abs() < 1e-9);
        let projected = estimate(
            &base
                .clone()
                .project(crate::algebra::ColumnSelector::ByLabels(vec![cell("c0")])),
        )
        .unwrap();
        assert_eq!(projected.cols, 1.0);
        assert!(projected.bytes < est.bytes);
        let transposed = estimate(&base.clone().transpose()).unwrap();
        assert_eq!((transposed.rows, transposed.cols), (4.0, 100.0));
        let limited = estimate(&base.clone().limit(7, false)).unwrap();
        assert_eq!(limited.rows, 7.0);
        let joined = estimate(&base.clone().join(
            AlgebraExpr::literal(frame(30, 2)),
            JoinOn::RowLabels,
            JoinType::Inner,
        ))
        .unwrap();
        assert_eq!(joined.rows, 100.0);
        assert_eq!(joined.cols, 6.0);
        let unioned = estimate(&base.clone().union(AlgebraExpr::literal(frame(30, 4)))).unwrap();
        assert_eq!(unioned.rows, 130.0);
    }

    #[test]
    fn scan_estimates_use_chunk_survivors() {
        let scan = crate::scan::ScanCsv::new("t.csv", ScanOptions::default(), "csv@t");
        let expr = AlgebraExpr::scan_csv(scan.clone());
        assert!(estimate(&expr).is_none(), "no stats yet → no estimate");
        scan.set_stats(Arc::new(ScanStats {
            labels: vec![cell("x"), cell("y")],
            n_cols: 2,
            total_rows: 100,
            total_bytes: 1600,
            domains: Some(vec![df_types::domain::Domain::Int; 2]),
            chunks: (0..4)
                .map(|i| ChunkStats {
                    start_byte: i * 400,
                    end_byte: (i + 1) * 400,
                    start_row: i as usize * 25,
                    rows: 25,
                    columns: vec![
                        ColumnChunkStats {
                            nulls: 0,
                            numeric: Some((i as f64 * 25.0, i as f64 * 25.0 + 24.0)),
                            numeric_count: 25,
                            lexical: None,
                            distinct: 25,
                        },
                        ColumnChunkStats::default(),
                    ],
                })
                .collect(),
        }));
        let full = estimate(&AlgebraExpr::scan_csv(scan.clone())).unwrap();
        assert_eq!(full.rows, 100.0);
        assert_eq!(full.bytes, 1600.0);
        // A predicate hitting one chunk: 25 surviving rows × ⅓ range selectivity,
        // over one of two columns.
        let pushed = scan
            .with_predicate(Predicate::ColCmp {
                column: cell("x"),
                op: CmpOp::Ge,
                value: cell(80),
            })
            .with_projection(vec![cell("x")]);
        let est = estimate(&AlgebraExpr::scan_csv(pushed)).unwrap();
        assert!((est.rows - 25.0 / 3.0).abs() < 1e-9);
        assert_eq!(est.cols, 1.0);
        assert!(est.bytes < full.bytes / 2.0);
    }

    #[test]
    fn render_plan_is_indented_and_annotated() {
        let expr = AlgebraExpr::literal(frame(100, 4))
            .select(Predicate::NotNull { column: cell("c1") })
            .limit(5, false);
        let plan = render_plan(&expr);
        let lines: Vec<&str> = plan.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("LIMIT"));
        assert!(lines[1].starts_with("  SELECTION"));
        assert!(lines[2].starts_with("    LITERAL"));
        assert!(lines[1].contains("NotNull"));
        assert!(lines[0].contains("~5 rows"));
    }

    #[test]
    fn human_bytes_picks_binary_units() {
        assert_eq!(human_bytes(512.0), "512 B");
        assert_eq!(human_bytes(2048.0), "2.0 KiB");
        assert_eq!(human_bytes(3.0 * 1024.0 * 1024.0), "3.0 MiB");
    }
}
