//! Typed column blocks: the columnar physical form of one partition.
//!
//! A [`ColumnBlock`] is a [`DataFrame`] re-encoded column-by-column into
//! [`ColumnData`] typed buffers (see `df_types::column` for the layout). It is the
//! unit the engine's `PartitionHandle` holds when a freshly parsed ingest band is
//! checked in columnar, and the unit spill format v3 serialises. The block is
//! intentionally *behind* the narrow waist: `PartitionGrid`, `SpillStore` and
//! `FrameHandle` callers keep exchanging `DataFrame`s, and a block decodes back to
//! an identical frame ([`ColumnBlock::to_frame`]) the first time an operator needs
//! row access.
//!
//! Besides the data, a block carries its per-column domains as *metadata*, which is
//! what lets `FrameHandle::schema()` answer dtype questions without loading or
//! assembling anything — the same trick `shape()` already plays.

use df_types::column::ColumnData;
use df_types::domain::Domain;
use df_types::error::{DfError, DfResult};
use df_types::labels::Labels;

use crate::dataframe::{Column, DataFrame};

/// One partition's worth of typed columns plus both label vectors and the
/// per-column domain metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnBlock {
    columns: Vec<ColumnData>,
    domains: Vec<Option<Domain>>,
    row_labels: Labels,
    col_labels: Labels,
}

impl ColumnBlock {
    /// Encode a dataframe into typed columns. Lossless for every frame: columns a
    /// typed layout cannot represent exactly fall back to tagged cells. Known
    /// domains are kept as metadata and guide the encoding (`category` columns
    /// dictionary-encode).
    pub fn from_frame(frame: &DataFrame) -> ColumnBlock {
        let domains: Vec<Option<Domain>> = frame.schema();
        let columns = frame
            .columns()
            .iter()
            .zip(&domains)
            .map(|(col, domain)| ColumnData::from_cells(col.cells(), domain.as_ref()))
            .collect();
        ColumnBlock {
            columns,
            domains,
            row_labels: frame.row_labels().clone(),
            col_labels: frame.col_labels().clone(),
        }
    }

    /// Assemble a block from already-encoded parts (the spill v3 reader uses this).
    /// Validates that every column matches the row-label length and that the domain
    /// and column-label vectors match the column count.
    pub fn from_parts(
        columns: Vec<ColumnData>,
        domains: Vec<Option<Domain>>,
        row_labels: Labels,
        col_labels: Labels,
    ) -> DfResult<ColumnBlock> {
        if columns.len() != col_labels.len() || domains.len() != columns.len() {
            return Err(DfError::shape(
                format!("{} columns", col_labels.len()),
                format!("{} buffers / {} domains", columns.len(), domains.len()),
            ));
        }
        if let Some(bad) = columns.iter().find(|c| c.len() != row_labels.len()) {
            return Err(DfError::shape(
                format!("{} rows", row_labels.len()),
                format!("{} rows", bad.len()),
            ));
        }
        Ok(ColumnBlock {
            columns,
            domains,
            row_labels,
            col_labels,
        })
    }

    /// Decode back into the row-addressable frame form, restoring domain metadata.
    /// `to_frame(from_frame(f))` is cell-for-cell identical to `f`.
    pub fn to_frame(&self) -> DataFrame {
        let columns = self
            .columns
            .iter()
            .zip(&self.domains)
            .map(|(data, domain)| match domain {
                Some(d) => Column::with_domain(data.to_cells(), *d),
                None => Column::new(data.to_cells()),
            })
            .collect();
        DataFrame::from_parts(columns, self.row_labels.clone(), self.col_labels.clone())
            .expect("column block dimensions are consistent by construction")
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.row_labels.len()
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.col_labels.len()
    }

    /// `(rows, columns)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.n_rows(), self.n_cols())
    }

    /// The typed columns.
    pub fn columns(&self) -> &[ColumnData] {
        &self.columns
    }

    /// Per-column domain metadata (declared/induced at encode time).
    pub fn domains(&self) -> &[Option<Domain>] {
        &self.domains
    }

    /// The row labels.
    pub fn row_labels(&self) -> &Labels {
        &self.row_labels
    }

    /// The column labels.
    pub fn col_labels(&self) -> &Labels {
        &self.col_labels
    }

    /// Honest memory footprint: typed buffers + validity bitmaps + dictionaries +
    /// both label vectors. For typed columns this is substantially smaller than the
    /// tagged-cell frame it encodes, which is exactly why a spill budget holds more
    /// columnar bands resident.
    pub fn approx_size_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(ColumnData::approx_size_bytes)
            .sum::<usize>()
            + self.row_labels.approx_size_bytes()
            + self.col_labels.approx_size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::cell::{cell, Cell};

    fn sample() -> DataFrame {
        let mut df = DataFrame::from_columns(
            vec!["id", "fare", "tag", "mixed"],
            vec![
                vec![cell(1), cell(2), Cell::Null],
                vec![cell(1.5), Cell::Null, cell(-0.0)],
                vec![cell("a"), cell("b"), cell("a")],
                vec![cell(1), cell("x"), Cell::Null],
            ],
        )
        .unwrap();
        df.columns_mut()[2].declare_domain(Domain::Category);
        df
    }

    #[test]
    fn encode_decode_round_trips_cells_labels_and_domains() {
        let df = sample();
        let block = ColumnBlock::from_frame(&df);
        assert_eq!(block.shape(), df.shape());
        let back = block.to_frame();
        assert!(back.same_data(&df));
        // The declared category domain survives the round trip as metadata.
        assert_eq!(back.schema()[2], Some(Domain::Category));
    }

    #[test]
    fn typed_columns_are_chosen_where_lossless() {
        let block = ColumnBlock::from_frame(&sample());
        assert!(block.columns()[0].is_typed()); // ints
        assert!(block.columns()[1].is_typed()); // floats
        assert!(matches!(block.columns()[2], ColumnData::Dict { .. }));
        assert!(!block.columns()[3].is_typed()); // mixed → tagged fallback
    }

    #[test]
    fn columnar_accounting_is_smaller_than_tagged_cells() {
        let n = 512;
        let df = DataFrame::from_columns(vec!["v"], vec![(0..n).map(|i| cell(i as i64)).collect()])
            .unwrap();
        let block = ColumnBlock::from_frame(&df);
        // Pin the accounting: 512 i64 values + one 8-word validity bitmap + labels.
        let labels = df.row_labels().approx_size_bytes() + df.col_labels().approx_size_bytes();
        assert_eq!(block.approx_size_bytes(), 512 * 8 + 8 * 8 + labels);
        assert!(block.approx_size_bytes() < df.approx_size_bytes());
    }
}
