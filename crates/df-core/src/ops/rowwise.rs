//! Row-wise operators: SELECTION, PROJECTION, MAP and RENAME.

use df_types::cell::Cell;
use df_types::domain::Domain;
use df_types::error::{DfError, DfResult};
use df_types::labels::Labels;

use crate::algebra::{ColumnSelector, MapFunc, Predicate, RowView};
use crate::dataframe::{Column, DataFrame};

/// SELECTION: keep the rows satisfying `predicate`, preserving their relative order
/// and their row labels (Table 1: order comes from the parent).
pub fn selection(df: &DataFrame, predicate: &Predicate) -> DfResult<DataFrame> {
    // Position-only predicates never look at values, so we can avoid materialising rows.
    if let Predicate::PositionRange { start, end } = predicate {
        let positions: Vec<usize> = (*start..(*end).min(df.n_rows())).collect();
        return df.take_rows(&positions);
    }
    // Vectorized path: evaluate the predicate column-at-a-time into a mask instead
    // of cloning every row into a `RowView`. `Custom` predicates (which receive the
    // whole row) fall through to the reference loop below.
    if df_types::column::columnar_enabled() {
        if let Some(mask) = super::columnar::predicate_mask(df, predicate) {
            let keep: Vec<usize> = mask
                .iter()
                .enumerate()
                .filter_map(|(i, &hit)| hit.then_some(i))
                .collect();
            return df.take_rows(&keep);
        }
    }
    let col_labels = df.col_labels().as_slice();
    let mut keep = Vec::new();
    for i in 0..df.n_rows() {
        let row = df.row(i)?;
        let view = RowView {
            col_labels,
            row_label: df.row_labels().get(i).unwrap_or(&Cell::Null),
            cells: &row,
        };
        if predicate.matches(i, view) {
            keep.push(i);
        }
    }
    df.take_rows(&keep)
}

/// PROJECTION: keep (and reorder) the selected columns, preserving row order.
pub fn projection(df: &DataFrame, columns: &ColumnSelector) -> DfResult<DataFrame> {
    let positions = columns.resolve(df)?;
    df.take_columns(&positions)
}

/// RENAME: change column labels according to `(old, new)` pairs.
pub fn rename(df: &DataFrame, mapping: &[(Cell, Cell)]) -> DfResult<DataFrame> {
    let mut labels = df.col_labels().clone();
    for (old, new) in mapping {
        let position = df.col_position(old)?;
        labels.set(position, new.clone())?;
    }
    DataFrame::from_parts(df.columns().to_vec(), df.row_labels().clone(), labels)
}

/// MAP: apply `func` uniformly to every row (paper §4.3). Built-in cell-wise functions
/// take a columnar fast path; row-reshaping functions (one-hot, pivot flatten, custom)
/// materialise row views.
pub fn map(df: &DataFrame, func: &MapFunc) -> DfResult<DataFrame> {
    match func {
        MapFunc::IsNullMask => Ok(cellwise(
            df,
            |c| Cell::Bool(c.is_null()),
            Some(Domain::Bool),
        )),
        MapFunc::FillNull(value) => Ok(cellwise(
            df,
            |c| {
                if c.is_null() {
                    value.clone()
                } else {
                    c.clone()
                }
            },
            None,
        )),
        MapFunc::StrUpper => Ok(cellwise(
            df,
            |c| match c {
                Cell::Str(s) => Cell::Str(s.to_uppercase()),
                other => other.clone(),
            },
            None,
        )),
        MapFunc::StrLower => Ok(cellwise(
            df,
            |c| match c {
                Cell::Str(s) => Cell::Str(s.to_lowercase()),
                other => other.clone(),
            },
            None,
        )),
        MapFunc::NumericAdd(delta) => Ok(cellwise(
            df,
            |c| match c.as_f64() {
                Some(v) => Cell::Float(v + delta),
                None => c.clone(),
            },
            None,
        )),
        MapFunc::NumericMul(factor) => Ok(cellwise(
            df,
            |c| match c.as_f64() {
                Some(v) => Cell::Float(v * factor),
                None => c.clone(),
            },
            None,
        )),
        MapFunc::PerCell { func, .. } => Ok(cellwise(df, |c| func(c), None)),
        MapFunc::Cast(targets) => cast(df, targets),
        MapFunc::ParseRaw => {
            let mut out = df.clone();
            out.parse_all();
            Ok(out)
        }
        MapFunc::NormalizeNumeric => normalize_numeric(df),
        MapFunc::OneHot { column, categories } => one_hot(df, column, categories),
        MapFunc::PivotFlatten {
            label_source,
            value_source,
            output_labels,
        } => pivot_flatten(df, label_source, value_source, output_labels),
        MapFunc::ProjectValues(selector) => projection(df, selector),
        MapFunc::Custom {
            output_labels,
            output_domains,
            func,
            ..
        } => custom_map(df, output_labels, output_domains.as_deref(), func.as_ref()),
    }
}

/// Apply a per-cell function to every cell, keeping shape, labels and (optionally)
/// declaring a statically known output domain.
fn cellwise(df: &DataFrame, f: impl Fn(&Cell) -> Cell, out_domain: Option<Domain>) -> DataFrame {
    let columns = df
        .columns()
        .iter()
        .map(|column| {
            let cells = column.cells().iter().map(&f).collect();
            match out_domain {
                Some(domain) => Column::with_domain(cells, domain),
                None => Column::new(cells),
            }
        })
        .collect();
    DataFrame::from_parts(columns, df.row_labels().clone(), df.col_labels().clone())
        .expect("cellwise map preserves shape")
}

fn cast(df: &DataFrame, targets: &[(Cell, Domain)]) -> DfResult<DataFrame> {
    let mut out = df.clone();
    for (label, domain) in targets {
        let j = out.col_position(label)?;
        let column = &df.columns()[j];
        let cells: DfResult<Vec<Cell>> = column.cells().iter().map(|c| domain.coerce(c)).collect();
        out.columns_mut()[j] = Column::with_domain(cells?, *domain);
    }
    Ok(out)
}

fn normalize_numeric(df: &DataFrame) -> DfResult<DataFrame> {
    let numeric: Vec<usize> = (0..df.n_cols())
        .filter(|&j| df.columns()[j].peek_domain().is_numeric())
        .collect();
    let mut out = df.clone();
    for i in 0..df.n_rows() {
        let sum: f64 = numeric
            .iter()
            .filter_map(|&j| df.columns()[j].cells()[i].as_f64())
            .sum();
        if sum == 0.0 {
            continue;
        }
        for &j in &numeric {
            if let Some(v) = df.columns()[j].cells()[i].as_f64() {
                out.set_cell(i, j, Cell::Float(v / sum))?;
            }
        }
    }
    Ok(out)
}

fn one_hot(df: &DataFrame, column: &Cell, categories: &[Cell]) -> DfResult<DataFrame> {
    let encoded = df.col_position(column)?;
    let n_rows = df.n_rows();
    let mut columns = Vec::new();
    let mut labels = Vec::new();
    for (j, col) in df.columns().iter().enumerate() {
        if j != encoded {
            columns.push(col.clone());
            labels.push(df.col_labels().get(j).cloned().unwrap_or(Cell::Null));
        } else {
            for category in categories {
                let cells: Vec<Cell> = (0..n_rows)
                    .map(|i| {
                        let matches = col.cells()[i].group_key() == category.group_key();
                        Cell::Int(i64::from(matches))
                    })
                    .collect();
                columns.push(Column::with_domain(cells, Domain::Int));
                labels.push(Cell::Str(format!("{column}_{category}")));
            }
        }
    }
    DataFrame::from_parts(columns, df.row_labels().clone(), Labels::new(labels))
}

fn pivot_flatten(
    df: &DataFrame,
    label_source: &Cell,
    value_source: &Cell,
    output_labels: &[Cell],
) -> DfResult<DataFrame> {
    let label_col = df.col_position(label_source)?;
    let value_col = df.col_position(value_source)?;
    let n_rows = df.n_rows();
    let mut columns: Vec<Vec<Cell>> = vec![Vec::with_capacity(n_rows); output_labels.len()];
    for i in 0..n_rows {
        let labels_cell = &df.columns()[label_col].cells()[i];
        let values_cell = &df.columns()[value_col].cells()[i];
        let (labels, values) = match (labels_cell.as_list(), values_cell.as_list()) {
            (Some(l), Some(v)) => (l, v),
            _ => {
                return Err(DfError::type_mismatch(
                    "composite (collect) cells",
                    format!("{labels_cell} / {values_cell}"),
                ))
            }
        };
        for (slot, out_label) in columns.iter_mut().zip(output_labels) {
            let key = out_label.group_key();
            let found = labels
                .iter()
                .position(|l| l.group_key() == key)
                .and_then(|p| values.get(p).cloned())
                .unwrap_or(Cell::Null);
            slot.push(found);
        }
    }
    let columns = columns.into_iter().map(Column::new).collect();
    DataFrame::from_parts(
        columns,
        df.row_labels().clone(),
        Labels::new(output_labels.to_vec()),
    )
}

fn custom_map(
    df: &DataFrame,
    output_labels: &[Cell],
    output_domains: Option<&[Domain]>,
    func: &(dyn Fn(RowView<'_>) -> Vec<Cell> + Send + Sync),
) -> DfResult<DataFrame> {
    let col_labels = df.col_labels().as_slice();
    let mut columns: Vec<Vec<Cell>> = vec![Vec::with_capacity(df.n_rows()); output_labels.len()];
    for i in 0..df.n_rows() {
        let row = df.row(i)?;
        let view = RowView {
            col_labels,
            row_label: df.row_labels().get(i).unwrap_or(&Cell::Null),
            cells: &row,
        };
        let produced = func(view);
        if produced.len() != output_labels.len() {
            return Err(DfError::shape(
                format!("{} output cells per row", output_labels.len()),
                format!("{} cells", produced.len()),
            ));
        }
        for (slot, cell) in columns.iter_mut().zip(produced) {
            slot.push(cell);
        }
    }
    let columns: Vec<Column> = columns
        .into_iter()
        .enumerate()
        .map(|(j, cells)| match output_domains.and_then(|d| d.get(j)) {
            Some(domain) => Column::with_domain(cells, *domain),
            None => Column::new(cells),
        })
        .collect();
    DataFrame::from_parts(
        columns,
        df.row_labels().clone(),
        Labels::new(output_labels.to_vec()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::CmpOp;
    use df_types::cell::cell;
    use std::sync::Arc;

    fn products() -> DataFrame {
        DataFrame::from_rows(
            vec!["name", "price", "wireless"],
            vec![
                vec![cell("iPhone 11"), cell(699), cell("Yes")],
                vec![cell("iPhone 11 Pro"), cell(999), cell("Yes")],
                vec![cell("iPhone 8"), Cell::Null, cell("No")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn selection_keeps_matching_rows_in_order() {
        let df = products();
        let out = selection(
            &df,
            &Predicate::ColCmp {
                column: cell("price"),
                op: CmpOp::Ge,
                value: cell(700),
            },
        )
        .unwrap();
        assert_eq!(out.shape(), (1, 3));
        assert_eq!(out.cell(0, 0).unwrap(), &cell("iPhone 11 Pro"));
        assert_eq!(out.row_labels().as_slice(), &[cell(1)]);
    }

    #[test]
    fn selection_by_position_range_skips_value_access() {
        let df = products();
        let out = selection(&df, &Predicate::PositionRange { start: 1, end: 5 }).unwrap();
        assert_eq!(out.shape(), (2, 3));
        assert_eq!(out.cell(0, 0).unwrap(), &cell("iPhone 11 Pro"));
    }

    #[test]
    fn selection_null_predicates() {
        let df = products();
        let nulls = selection(
            &df,
            &Predicate::IsNull {
                column: cell("price"),
            },
        )
        .unwrap();
        assert_eq!(nulls.shape(), (1, 3));
        let non_null = selection(
            &df,
            &Predicate::NotNull {
                column: cell("price"),
            },
        )
        .unwrap();
        assert_eq!(non_null.shape(), (2, 3));
    }

    #[test]
    fn projection_selects_and_reorders() {
        let df = products();
        let out = projection(
            &df,
            &ColumnSelector::ByLabels(vec![cell("price"), cell("name")]),
        )
        .unwrap();
        assert_eq!(out.col_labels().as_slice(), &[cell("price"), cell("name")]);
        assert_eq!(out.cell(0, 1).unwrap(), &cell("iPhone 11"));
        assert!(projection(&df, &ColumnSelector::ByLabels(vec![cell("zz")])).is_err());
    }

    #[test]
    fn rename_changes_one_label() {
        let df = products();
        let out = rename(&df, &[(cell("wireless"), cell("wireless_charging"))]).unwrap();
        assert!(out.col_position(&cell("wireless_charging")).is_ok());
        assert!(out.col_position(&cell("wireless")).is_err());
        assert!(rename(&df, &[(cell("missing"), cell("x"))]).is_err());
    }

    #[test]
    fn map_is_null_mask_matches_figure2_map_query() {
        let df = products();
        let out = map(&df, &MapFunc::IsNullMask).unwrap();
        assert_eq!(out.cell(2, 1).unwrap(), &cell(true));
        assert_eq!(out.cell(0, 1).unwrap(), &cell(false));
        assert_eq!(out.schema()[1], Some(Domain::Bool));
    }

    #[test]
    fn map_fill_null_and_string_case() {
        let df = products();
        let filled = map(&df, &MapFunc::FillNull(cell(0))).unwrap();
        assert_eq!(filled.cell(2, 1).unwrap(), &cell(0));
        let upper = map(&df, &MapFunc::StrUpper).unwrap();
        assert_eq!(upper.cell(0, 0).unwrap(), &cell("IPHONE 11"));
        let lower = map(&upper, &MapFunc::StrLower).unwrap();
        assert_eq!(lower.cell(0, 0).unwrap(), &cell("iphone 11"));
    }

    #[test]
    fn map_numeric_add_and_mul_ignore_non_numeric() {
        let df = products();
        let out = map(&df, &MapFunc::NumericAdd(1.0)).unwrap();
        assert_eq!(out.cell(0, 1).unwrap(), &cell(700.0));
        assert_eq!(out.cell(0, 0).unwrap(), &cell("iPhone 11"));
        let scaled = map(&df, &MapFunc::NumericMul(2.0)).unwrap();
        assert_eq!(scaled.cell(1, 1).unwrap(), &cell(1998.0));
    }

    #[test]
    fn map_cast_changes_domains() {
        let df = products();
        let out = map(&df, &MapFunc::Cast(vec![(cell("price"), Domain::Float)])).unwrap();
        assert_eq!(out.cell(0, 1).unwrap(), &cell(699.0));
        assert_eq!(out.schema()[1], Some(Domain::Float));
        assert!(map(&df, &MapFunc::Cast(vec![(cell("name"), Domain::Int)])).is_err());
    }

    #[test]
    fn map_parse_raw_types_string_columns() {
        let df =
            DataFrame::from_columns(vec!["price"], vec![vec![cell("10"), cell("20")]]).unwrap();
        let out = map(&df, &MapFunc::ParseRaw).unwrap();
        assert_eq!(out.cell(0, 0).unwrap(), &cell(10));
    }

    #[test]
    fn map_normalize_numeric_rows_sum_to_one() {
        let df = DataFrame::from_rows(
            vec!["a", "b", "name"],
            vec![
                vec![cell(1.0), cell(3.0), cell("r0")],
                vec![cell(0.0), cell(0.0), cell("r1")],
            ],
        )
        .unwrap();
        let out = map(&df, &MapFunc::NormalizeNumeric).unwrap();
        assert_eq!(out.cell(0, 0).unwrap(), &cell(0.25));
        assert_eq!(out.cell(0, 1).unwrap(), &cell(0.75));
        // zero-sum rows are left untouched
        assert_eq!(out.cell(1, 0).unwrap(), &cell(0.0));
        assert_eq!(out.cell(0, 2).unwrap(), &cell("r0"));
    }

    #[test]
    fn map_one_hot_expands_categories() {
        let df = products();
        let out = map(
            &df,
            &MapFunc::OneHot {
                column: cell("wireless"),
                categories: vec![cell("Yes"), cell("No")],
            },
        )
        .unwrap();
        assert_eq!(out.shape(), (3, 4));
        assert_eq!(
            out.col_labels().as_slice()[2..],
            [cell("wireless_Yes"), cell("wireless_No")]
        );
        assert_eq!(out.cell(0, 2).unwrap(), &cell(1));
        assert_eq!(out.cell(2, 2).unwrap(), &cell(0));
        assert_eq!(out.cell(2, 3).unwrap(), &cell(1));
    }

    #[test]
    fn map_custom_checks_arity() {
        let df = products();
        let ok = map(
            &df,
            &MapFunc::Custom {
                name: "price_only".into(),
                output_labels: vec![cell("price_doubled")],
                output_domains: Some(vec![Domain::Float]),
                func: Arc::new(|row: RowView<'_>| {
                    vec![row
                        .get(&cell("price"))
                        .and_then(Cell::as_f64)
                        .map(|v| Cell::Float(v * 2.0))
                        .unwrap_or(Cell::Null)]
                }),
            },
        )
        .unwrap();
        assert_eq!(ok.shape(), (3, 1));
        assert_eq!(ok.cell(0, 0).unwrap(), &cell(1398.0));
        assert_eq!(ok.cell(2, 0).unwrap(), &Cell::Null);
        let bad = map(
            &df,
            &MapFunc::Custom {
                name: "wrong_arity".into(),
                output_labels: vec![cell("a"), cell("b")],
                output_domains: None,
                func: Arc::new(|_| vec![Cell::Null]),
            },
        );
        assert!(bad.is_err());
    }

    #[test]
    fn map_per_cell_applies_everywhere() {
        let df = products();
        let out = map(
            &df,
            &MapFunc::PerCell {
                name: "nullify_strings".into(),
                func: Arc::new(|c: &Cell| match c {
                    Cell::Str(_) => Cell::Null,
                    other => other.clone(),
                }),
            },
        )
        .unwrap();
        assert_eq!(out.cell(0, 0).unwrap(), &Cell::Null);
        assert_eq!(out.cell(0, 1).unwrap(), &cell(699));
    }

    #[test]
    fn map_project_values_behaves_like_projection() {
        let df = products();
        // Only "price" is numeric: "wireless" holds Yes/No strings, which S keeps in
        // the string domains (they only become booleans under an explicit cast).
        let out = map(&df, &MapFunc::ProjectValues(ColumnSelector::Numeric)).unwrap();
        assert_eq!(out.shape(), (3, 1));
        assert_eq!(out.col_labels().as_slice(), &[cell("price")]);
    }

    #[test]
    fn pivot_flatten_aligns_by_label_and_fills_nulls() {
        let df = DataFrame::from_rows(
            vec!["Month", "Sales"],
            vec![
                vec![
                    Cell::List(vec![cell("Jan"), cell("Feb")]),
                    Cell::List(vec![cell(100), cell(110)]),
                ],
                vec![Cell::List(vec![cell("Jan")]), Cell::List(vec![cell(300)])],
            ],
        )
        .unwrap();
        let out = map(
            &df,
            &MapFunc::PivotFlatten {
                label_source: cell("Month"),
                value_source: cell("Sales"),
                output_labels: vec![cell("Jan"), cell("Feb"), cell("Mar")],
            },
        )
        .unwrap();
        assert_eq!(out.shape(), (2, 3));
        assert_eq!(out.cell(0, 1).unwrap(), &cell(110));
        assert_eq!(out.cell(1, 1).unwrap(), &Cell::Null);
        assert_eq!(out.cell(1, 2).unwrap(), &Cell::Null);
        // Non-composite inputs are rejected.
        let bad = map(
            &products(),
            &MapFunc::PivotFlatten {
                label_source: cell("name"),
                value_source: cell("price"),
                output_labels: vec![cell("x")],
            },
        );
        assert!(bad.is_err());
    }
}
