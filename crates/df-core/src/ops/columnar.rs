//! Vectorized columnar kernels.
//!
//! The reference operators in the sibling modules define the algebra's semantics one
//! row at a time: SELECTION clones whole rows into [`crate::algebra::RowView`]s, GROUPBY hashes
//! tagged cells, SORT compares through [`Cell::total_cmp`]'s nested matches. The
//! functions here are their column-at-a-time counterparts: tight loops over one
//! column (or one typed [`ColumnData`] buffer) that the compiler can keep in
//! registers and auto-vectorize. Every kernel is required to agree with the
//! row-oriented path cell-for-cell — the differential suite in
//! `tests/columnar_equivalence.rs` runs both paths on random frames and compares.
//!
//! All call sites gate on [`df_types::columnar_enabled`], so flipping the global
//! switch (or setting `DF_COLUMNAR=0`) restores the reference path everywhere.
//!
//! Kernels:
//! * [`predicate_mask`] — SELECTION: evaluate a predicate into a boolean mask, one
//!   column scan per leaf, without materialising a row or a `Cell` per comparison.
//! * Grouping tables keyed by the raw 64-bit [`StableHasher`](df_types::cell::StableHasher)
//!   stream ([`RawTable`]): GROUPBY / DROP DUPLICATES probe on the already-mixed
//!   hash instead of re-hashing a `Vec<CellKey>` clone of every row.
//! * Typed sort keys and single-pass aggregation feeds live with their operators in
//!   `ops::group`, built on [`ColumnData::cmp_rows`] / [`ColumnData::f64_at`].

use std::hash::{BuildHasherDefault, Hasher};

use df_types::cell::Cell;
use df_types::column::ColumnData;

use crate::algebra::{CmpOp, Predicate};
use crate::dataframe::{Column, DataFrame};

/// Probe a column for a typed buffer worth hashing / grouping / sorting through.
/// Numeric and boolean columns win outright (flat buffer, no enum branches);
/// `category` columns dictionary-encode so key equality is a code compare. Plain
/// string columns stay on the reference path — a `Str` buffer would clone the whole
/// column for no kernel gain — as does anything mixed (the probe refuses without
/// copying).
pub fn typed_for_keying(column: &Column) -> Option<ColumnData> {
    match ColumnData::from_cells_typed(column.cells(), column.known_domain().as_ref()) {
        Some(
            data @ (ColumnData::Int { .. }
            | ColumnData::Float { .. }
            | ColumnData::Bool { .. }
            | ColumnData::Dict { .. }),
        ) => Some(data),
        _ => None,
    }
}

/// Evaluate `predicate` for every row of `df` as a boolean mask, or `None` when the
/// predicate contains a leaf only the row-oriented path can evaluate (`Custom`
/// predicates receive a whole-row view). Semantics match
/// [`Predicate::matches`] exactly: missing columns make `ColCmp`/`IsNull`/`NotNull`
/// leaves false, null operands make comparisons false, and cross-domain comparisons
/// order by domain rank.
pub fn predicate_mask(df: &DataFrame, predicate: &Predicate) -> Option<Vec<bool>> {
    let n = df.n_rows();
    match predicate {
        Predicate::True => Some(vec![true; n]),
        Predicate::PositionRange { start, end } => {
            Some((0..n).map(|i| i >= *start && i < *end).collect())
        }
        Predicate::ColCmp { column, op, value } => Some(match resolve(df, column) {
            Some(j) => colcmp_mask(df.columns()[j].cells(), *op, value),
            None => vec![false; n],
        }),
        Predicate::IsNull { column } => Some(match resolve(df, column) {
            Some(j) => df.columns()[j].cells().iter().map(Cell::is_null).collect(),
            None => vec![false; n],
        }),
        Predicate::NotNull { column } => Some(match resolve(df, column) {
            Some(j) => df.columns()[j]
                .cells()
                .iter()
                .map(|c| !c.is_null())
                .collect(),
            None => vec![false; n],
        }),
        Predicate::Not(inner) => {
            let mut mask = predicate_mask(df, inner)?;
            for b in &mut mask {
                *b = !*b;
            }
            Some(mask)
        }
        Predicate::And(a, b) => {
            let mut mask = predicate_mask(df, a)?;
            let other = predicate_mask(df, b)?;
            for (x, y) in mask.iter_mut().zip(other) {
                *x = *x && y;
            }
            Some(mask)
        }
        Predicate::Or(a, b) => {
            let mut mask = predicate_mask(df, a)?;
            let other = predicate_mask(df, b)?;
            for (x, y) in mask.iter_mut().zip(other) {
                *x = *x || y;
            }
            Some(mask)
        }
        Predicate::Custom { .. } => None,
    }
}

/// Resolve a column label the way [`RowView::get`](crate::algebra::RowView::get)
/// does — first position whose group key matches — but once per predicate leaf
/// instead of once per row.
fn resolve(df: &DataFrame, label: &Cell) -> Option<usize> {
    let key = label.group_key();
    df.col_labels()
        .as_slice()
        .iter()
        .position(|l| l.group_key() == key)
}

/// One `column <op> constant` scan. The constant's domain is dispatched *outside*
/// the loop, so the common numeric case runs `f64::partial_cmp` per cell with no
/// `total_cmp` rank matching and no `Cell` construction.
fn colcmp_mask(cells: &[Cell], op: CmpOp, value: &Cell) -> Vec<bool> {
    use std::cmp::Ordering;
    if value.is_null() {
        // Comparisons against null are false for every row.
        return vec![false; cells.len()];
    }
    if let Some(target) = value.as_f64() {
        // Numeric constant: ints, floats and bools all compare through f64, which
        // is exactly what `total_cmp`'s widening arm does. Bool-vs-bool ordering
        // coincides with 0.0/1.0, so it needs no special case.
        return cells
            .iter()
            .map(|c| match c {
                Cell::Null => false,
                Cell::Int(x) => {
                    op.eval_ord((*x as f64).partial_cmp(&target).unwrap_or(Ordering::Equal))
                }
                Cell::Float(x) => op.eval_ord(x.partial_cmp(&target).unwrap_or(Ordering::Equal)),
                Cell::Bool(x) => op.eval_ord(
                    (if *x { 1.0 } else { 0.0 })
                        .partial_cmp(&target)
                        .unwrap_or(Ordering::Equal),
                ),
                other => op.eval(other, value),
            })
            .collect();
    }
    if let Cell::Str(target) = value {
        return cells
            .iter()
            .map(|c| match c {
                Cell::Null => false,
                Cell::Str(x) => op.eval_ord(x.as_str().cmp(target.as_str())),
                other => op.eval(other, value),
            })
            .collect();
    }
    // Composite constants are rare; evaluate through the shared decision table.
    cells.iter().map(|c| op.eval(c, value)).collect()
}

/// A no-op `Hasher` for keys that are already 64-bit hashes. The grouping kernels
/// stream every key cell through a [`StableHasher`](df_types::cell::StableHasher)
/// anyway (that hash must be stable for shuffles), so feeding the result through
/// SipHash again — as `HashMap`'s default would — is pure overhead.
#[derive(Debug, Default, Clone, Copy)]
pub struct PassthroughHasher(u64);

impl Hasher for PassthroughHasher {
    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.0 = value;
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("PassthroughHasher only accepts pre-hashed u64 keys");
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Hash table from a pre-mixed 64-bit group hash to the group/row ids carrying it.
/// Collisions are resolved by the caller with `key_eq` verification, same as the
/// reference kernels.
pub type RawTable =
    std::collections::HashMap<u64, Vec<usize>, BuildHasherDefault<PassthroughHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::RowView;
    use df_types::cell::cell;

    fn frame() -> DataFrame {
        DataFrame::from_columns(
            vec!["fare", "tag", "mixed"],
            vec![
                vec![cell(10.0), cell(25), Cell::Null, cell(-0.0)],
                vec![cell("a"), Cell::Null, cell("b"), cell("a")],
                vec![cell(1), cell("x"), cell(true), Cell::Null],
            ],
        )
        .unwrap()
    }

    fn reference_mask(df: &DataFrame, predicate: &Predicate) -> Vec<bool> {
        (0..df.n_rows())
            .map(|i| {
                let row = df.row(i).unwrap();
                let view = RowView {
                    col_labels: df.col_labels().as_slice(),
                    row_label: df.row_labels().get(i).unwrap_or(&Cell::Null),
                    cells: &row,
                };
                predicate.matches(i, view)
            })
            .collect()
    }

    #[test]
    fn masks_match_the_row_oriented_reference() {
        let df = frame();
        let predicates = vec![
            Predicate::True,
            Predicate::ColCmp {
                column: cell("fare"),
                op: CmpOp::Gt,
                value: cell(20.0),
            },
            Predicate::ColCmp {
                column: cell("fare"),
                op: CmpOp::Le,
                value: cell(10),
            },
            Predicate::ColCmp {
                column: cell("tag"),
                op: CmpOp::Eq,
                value: cell("a"),
            },
            Predicate::ColCmp {
                column: cell("mixed"),
                op: CmpOp::Ge,
                value: cell(true),
            },
            Predicate::ColCmp {
                column: cell("missing"),
                op: CmpOp::Eq,
                value: cell(1),
            },
            Predicate::IsNull {
                column: cell("tag"),
            },
            Predicate::NotNull {
                column: cell("mixed"),
            },
            Predicate::PositionRange { start: 1, end: 3 },
            Predicate::Not(Box::new(Predicate::ColCmp {
                column: cell("missing"),
                op: CmpOp::Eq,
                value: cell(1),
            })),
            Predicate::And(
                Box::new(Predicate::NotNull {
                    column: cell("fare"),
                }),
                Box::new(Predicate::ColCmp {
                    column: cell("fare"),
                    op: CmpOp::Lt,
                    value: cell(20),
                }),
            ),
            Predicate::Or(
                Box::new(Predicate::IsNull {
                    column: cell("fare"),
                }),
                Box::new(Predicate::ColCmp {
                    column: cell("tag"),
                    op: CmpOp::Ne,
                    value: cell("a"),
                }),
            ),
        ];
        for predicate in &predicates {
            assert_eq!(
                predicate_mask(&df, predicate).unwrap(),
                reference_mask(&df, predicate),
                "mask diverged for {predicate:?}"
            );
        }
    }

    #[test]
    fn custom_predicates_stay_on_the_row_path() {
        let custom = Predicate::Custom {
            name: "p".into(),
            func: std::sync::Arc::new(|_| true),
        };
        assert!(predicate_mask(&frame(), &custom).is_none());
        assert!(predicate_mask(
            &frame(),
            &Predicate::And(Box::new(Predicate::True), Box::new(custom.clone()))
        )
        .is_none());
    }

    #[test]
    fn float_zero_signs_compare_equal() {
        let df = frame();
        let mask = predicate_mask(
            &df,
            &Predicate::ColCmp {
                column: cell("fare"),
                op: CmpOp::Eq,
                value: cell(0.0),
            },
        )
        .unwrap();
        assert_eq!(mask, vec![false, false, false, true]);
    }
}
