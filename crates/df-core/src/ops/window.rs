//! WINDOW: sliding-window functions over the dataframe's inherent order.
//!
//! Paper §4.3: windowing in dataframes differs from SQL in that the inherent row order
//! makes an ORDER BY clause unnecessary. Pandas operators such as `cummax`, `diff` and
//! `shift` are WINDOW with specific functions (§4.4).

use df_types::cell::Cell;
use df_types::error::DfResult;

use crate::algebra::{ColumnSelector, WindowFunc};
use crate::dataframe::{Column, DataFrame};

/// Apply `func` to each selected column, leaving the other columns untouched.
pub fn window(df: &DataFrame, columns: &ColumnSelector, func: &WindowFunc) -> DfResult<DataFrame> {
    let targets = columns.resolve(df)?;
    let mut out = df.clone();
    for &j in &targets {
        let cells = apply(df.columns()[j].cells(), func);
        out.columns_mut()[j] = Column::new(cells);
    }
    Ok(out)
}

fn apply(cells: &[Cell], func: &WindowFunc) -> Vec<Cell> {
    match func {
        WindowFunc::CumSum => cumulative(cells, |acc, v| acc + v),
        WindowFunc::CumMax => cumulative(cells, f64::max),
        WindowFunc::CumMin => cumulative(cells, f64::min),
        WindowFunc::Diff { lag } => diff(cells, *lag),
        WindowFunc::Shift { offset } => shift(cells, *offset),
        WindowFunc::RollingMean { size } => rolling(cells, *size, true),
        WindowFunc::RollingSum { size } => rolling(cells, *size, false),
    }
}

/// Cumulative fold over numeric cells; nulls and non-numeric values propagate null at
/// their own position but do not reset the accumulator.
fn cumulative(cells: &[Cell], fold: impl Fn(f64, f64) -> f64) -> Vec<Cell> {
    let mut acc: Option<f64> = None;
    cells
        .iter()
        .map(|c| match c.as_f64() {
            Some(v) => {
                acc = Some(match acc {
                    None => v,
                    Some(prev) => fold(prev, v),
                });
                Cell::Float(acc.unwrap())
            }
            None => Cell::Null,
        })
        .collect()
}

fn diff(cells: &[Cell], lag: usize) -> Vec<Cell> {
    (0..cells.len())
        .map(|i| {
            if i < lag {
                return Cell::Null;
            }
            match (cells[i].as_f64(), cells[i - lag].as_f64()) {
                (Some(a), Some(b)) => Cell::Float(a - b),
                _ => Cell::Null,
            }
        })
        .collect()
}

fn shift(cells: &[Cell], offset: i64) -> Vec<Cell> {
    let n = cells.len() as i64;
    (0..n)
        .map(|i| {
            let source = i - offset;
            if source < 0 || source >= n {
                Cell::Null
            } else {
                cells[source as usize].clone()
            }
        })
        .collect()
}

fn rolling(cells: &[Cell], size: usize, mean: bool) -> Vec<Cell> {
    if size == 0 {
        return vec![Cell::Null; cells.len()];
    }
    (0..cells.len())
        .map(|i| {
            if i + 1 < size {
                return Cell::Null;
            }
            let window = &cells[i + 1 - size..=i];
            let values: Vec<f64> = window.iter().filter_map(Cell::as_f64).collect();
            if values.len() != size {
                return Cell::Null;
            }
            let sum: f64 = values.iter().sum();
            Cell::Float(if mean { sum / size as f64 } else { sum })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::cell::cell;

    fn series(values: Vec<Cell>) -> DataFrame {
        DataFrame::from_columns(vec!["v"], vec![values]).unwrap()
    }

    fn col(df: &DataFrame) -> Vec<Cell> {
        df.columns()[0].cells().to_vec()
    }

    #[test]
    fn cumsum_and_cummax() {
        let df = series(vec![cell(1), cell(3), Cell::Null, cell(2)]);
        let sum = window(&df, &ColumnSelector::All, &WindowFunc::CumSum).unwrap();
        assert_eq!(col(&sum), vec![cell(1.0), cell(4.0), Cell::Null, cell(6.0)]);
        let max = window(&df, &ColumnSelector::All, &WindowFunc::CumMax).unwrap();
        assert_eq!(col(&max), vec![cell(1.0), cell(3.0), Cell::Null, cell(3.0)]);
        let min = window(&df, &ColumnSelector::All, &WindowFunc::CumMin).unwrap();
        assert_eq!(col(&min), vec![cell(1.0), cell(1.0), Cell::Null, cell(1.0)]);
    }

    #[test]
    fn diff_uses_lag_and_null_padding() {
        let df = series(vec![cell(10), cell(13), cell(20)]);
        let out = window(&df, &ColumnSelector::All, &WindowFunc::Diff { lag: 1 }).unwrap();
        assert_eq!(col(&out), vec![Cell::Null, cell(3.0), cell(7.0)]);
        let lag2 = window(&df, &ColumnSelector::All, &WindowFunc::Diff { lag: 2 }).unwrap();
        assert_eq!(col(&lag2), vec![Cell::Null, Cell::Null, cell(10.0)]);
    }

    #[test]
    fn shift_down_and_up() {
        let df = series(vec![cell(1), cell(2), cell(3)]);
        let down = window(&df, &ColumnSelector::All, &WindowFunc::Shift { offset: 1 }).unwrap();
        assert_eq!(col(&down), vec![Cell::Null, cell(1), cell(2)]);
        let up = window(&df, &ColumnSelector::All, &WindowFunc::Shift { offset: -1 }).unwrap();
        assert_eq!(col(&up), vec![cell(2), cell(3), Cell::Null]);
    }

    #[test]
    fn rolling_mean_and_sum_need_full_windows() {
        let df = series(vec![cell(2), cell(4), cell(6), Cell::Null, cell(8)]);
        let mean = window(
            &df,
            &ColumnSelector::All,
            &WindowFunc::RollingMean { size: 2 },
        )
        .unwrap();
        assert_eq!(
            col(&mean),
            vec![Cell::Null, cell(3.0), cell(5.0), Cell::Null, Cell::Null]
        );
        let sum = window(
            &df,
            &ColumnSelector::All,
            &WindowFunc::RollingSum { size: 2 },
        )
        .unwrap();
        assert_eq!(col(&sum)[1], cell(6.0));
        let degenerate = window(
            &df,
            &ColumnSelector::All,
            &WindowFunc::RollingSum { size: 0 },
        )
        .unwrap();
        assert_eq!(col(&degenerate), vec![Cell::Null; 5]);
    }

    #[test]
    fn window_only_touches_selected_columns() {
        let df = DataFrame::from_rows(
            vec!["a", "b"],
            vec![vec![cell(1), cell(10)], vec![cell(2), cell(20)]],
        )
        .unwrap();
        let out = window(
            &df,
            &ColumnSelector::ByLabels(vec![cell("a")]),
            &WindowFunc::CumSum,
        )
        .unwrap();
        assert_eq!(out.cell(1, 0).unwrap(), &cell(3.0));
        assert_eq!(out.cell(1, 1).unwrap(), &cell(20));
    }
}
