//! TRANSPOSE, TOLABELS, FROMLABELS and LIMIT — the operators that move values between
//! data and metadata or reorient the frame (paper §4.3).

use df_types::cell::Cell;
use df_types::error::DfResult;
use df_types::labels::Labels;

use crate::dataframe::{Column, DataFrame};

/// TRANSPOSE: interchange rows and columns.
///
/// Given `DF = (A_mn, R_m, C_n, D_n)`, returns `(Aᵀ_nm, C_n, R_m, null)`: the old
/// column labels become the row labels, the old row labels become the column labels,
/// and the schema is left unspecified (to be re-induced by `S` — paper §4.3 notes the
/// output schema may not resemble the input's).
pub fn transpose(df: &DataFrame) -> DfResult<DataFrame> {
    let (m, n) = df.shape();
    let mut columns: Vec<Vec<Cell>> = vec![Vec::with_capacity(n); m];
    for j in 0..n {
        for (i, slot) in columns.iter_mut().enumerate() {
            slot.push(df.columns()[j].cells()[i].clone());
        }
    }
    DataFrame::from_parts(
        columns.into_iter().map(Column::new).collect(),
        df.col_labels().clone(),
        df.row_labels().clone(),
    )
}

/// TOLABELS: project the named column out of the data and use its values as the new
/// row labels, replacing the old labels (paper §4.3: "converts data into metadata").
pub fn to_labels(df: &DataFrame, column: &Cell) -> DfResult<DataFrame> {
    let j = df.col_position(column)?;
    let new_labels = Labels::new(df.columns()[j].cells().to_vec());
    let keep: Vec<usize> = (0..df.n_cols()).filter(|&p| p != j).collect();
    let projected = df.take_columns(&keep)?;
    DataFrame::from_parts(
        projected.columns().to_vec(),
        new_labels,
        projected.col_labels().clone(),
    )
}

/// FROMLABELS: insert the row labels as a new data column at position 0 with the given
/// label, and reset the row labels to positional ranks (paper §4.3). The new column's
/// domain starts unspecified, to be induced by `S`.
pub fn from_labels(df: &DataFrame, new_column: &Cell) -> DfResult<DataFrame> {
    let mut columns = Vec::with_capacity(df.n_cols() + 1);
    columns.push(Column::new(df.row_labels().as_slice().to_vec()));
    columns.extend(df.columns().iter().cloned());
    let mut labels = vec![new_column.clone()];
    labels.extend(df.col_labels().as_slice().iter().cloned());
    DataFrame::from_parts(
        columns,
        Labels::positional(df.n_rows()),
        Labels::new(labels),
    )
}

/// LIMIT: the first (or last) `k` rows. Expressible as a positional SELECTION; kept as
/// its own operator so engines can prioritise prefix/suffix production (§6.1.2).
pub fn limit(df: &DataFrame, k: usize, from_end: bool) -> DataFrame {
    if from_end {
        df.tail(k)
    } else {
        df.head(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::cell::cell;
    use df_types::domain::Domain;

    fn crosstab() -> DataFrame {
        // The Figure 1 products table: features as rows, products as columns.
        DataFrame::from_rows(
            vec!["iPhone 11", "iPhone 11 Pro"],
            vec![
                vec![cell("6.1-inch"), cell("5.8-inch")],
                vec![cell("12MP"), cell("12MP")],
                vec![cell("No"), cell("Yes")],
            ],
        )
        .unwrap()
        .with_row_labels(vec!["Display", "Camera", "Wireless Charging"])
        .unwrap()
    }

    #[test]
    fn transpose_swaps_data_and_labels() {
        let df = crosstab();
        let t = transpose(&df).unwrap();
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(
            t.row_labels().as_slice(),
            &[cell("iPhone 11"), cell("iPhone 11 Pro")]
        );
        assert_eq!(
            t.col_labels().as_slice(),
            &[cell("Display"), cell("Camera"), cell("Wireless Charging")]
        );
        assert_eq!(t.cell(1, 2).unwrap(), &cell("Yes"));
        // Schema of the transpose is unspecified until induced.
        assert_eq!(t.schema(), vec![None, None, None]);
    }

    #[test]
    fn double_transpose_restores_data() {
        let df = crosstab();
        let round_trip = transpose(&transpose(&df).unwrap()).unwrap();
        assert!(round_trip.same_data(&df));
    }

    #[test]
    fn transpose_of_empty_and_single_cell_frames() {
        let empty = DataFrame::empty();
        assert_eq!(transpose(&empty).unwrap().shape(), (0, 0));
        let single = DataFrame::from_rows(vec!["a"], vec![vec![cell(1)]]).unwrap();
        let t = transpose(&single).unwrap();
        assert_eq!(t.shape(), (1, 1));
        assert_eq!(t.cell(0, 0).unwrap(), &cell(1));
        assert_eq!(t.row_labels().as_slice(), &[cell("a")]);
    }

    #[test]
    fn transpose_schema_can_be_reinduced_after_round_trip() {
        // Python-style behaviour (paper §4.3): runtime-typed cells let S recover the
        // original schema after two transposes even though each transpose clears D_n.
        let df = DataFrame::from_rows(
            vec!["int_col", "str_col"],
            vec![vec![cell(1), cell("a")], vec![cell(2), cell("b")]],
        )
        .unwrap();
        let mut round_trip = transpose(&transpose(&df).unwrap()).unwrap();
        assert_eq!(round_trip.resolve_schema(), vec![Domain::Int, Domain::Str]);
    }

    #[test]
    fn to_labels_moves_column_into_metadata() {
        let df = DataFrame::from_rows(
            vec!["Year", "Sales"],
            vec![vec![cell(2001), cell(100)], vec![cell(2002), cell(150)]],
        )
        .unwrap();
        let out = to_labels(&df, &cell("Year")).unwrap();
        assert_eq!(out.shape(), (2, 1));
        assert_eq!(out.row_labels().as_slice(), &[cell(2001), cell(2002)]);
        assert_eq!(out.col_labels().as_slice(), &[cell("Sales")]);
        assert!(to_labels(&df, &cell("missing")).is_err());
    }

    #[test]
    fn from_labels_moves_metadata_into_data() {
        let df = DataFrame::from_rows(vec!["Sales"], vec![vec![cell(100)], vec![cell(150)]])
            .unwrap()
            .with_row_labels(vec![cell(2001), cell(2002)])
            .unwrap();
        let out = from_labels(&df, &cell("Year")).unwrap();
        assert_eq!(out.shape(), (2, 2));
        assert_eq!(out.col_labels().as_slice(), &[cell("Year"), cell("Sales")]);
        assert_eq!(out.cell(0, 0).unwrap(), &cell(2001));
        assert_eq!(out.row_labels().as_slice(), &[cell(0), cell(1)]);
    }

    #[test]
    fn tolabels_then_fromlabels_round_trips_data() {
        let df = DataFrame::from_rows(
            vec!["Year", "Sales"],
            vec![vec![cell(2001), cell(100)], vec![cell(2002), cell(150)]],
        )
        .unwrap();
        let promoted = to_labels(&df, &cell("Year")).unwrap();
        let back = from_labels(&promoted, &cell("Year")).unwrap();
        assert!(back.same_data(&df));
    }

    #[test]
    fn limit_takes_prefix_or_suffix() {
        let df =
            DataFrame::from_columns(vec!["v"], vec![(0..10).map(|i| cell(i as i64)).collect()])
                .unwrap();
        assert_eq!(limit(&df, 3, false).cell(2, 0).unwrap(), &cell(2));
        assert_eq!(limit(&df, 3, true).cell(0, 0).unwrap(), &cell(7));
        assert_eq!(limit(&df, 99, false).shape(), (10, 1));
    }
}
