//! Reference implementations of the 14 algebra operators over [`DataFrame`].
//!
//! These functions define the *semantics* of the algebra: every engine in the workspace
//! must agree with them cell-for-cell (the integration tests compare the baseline and
//! the scalable engine against this executor on randomly generated frames). They favour
//! clarity over speed; the engines are where the paper's performance ideas live.

pub mod columnar;
pub mod group;
pub mod reshape;
pub mod rowwise;
pub mod setops;
pub mod window;

use df_types::error::{DfError, DfResult};

use crate::algebra::AlgebraExpr;
use crate::dataframe::DataFrame;

/// Execute an algebra expression with the reference operator implementations.
pub fn execute_reference(expr: &AlgebraExpr) -> DfResult<DataFrame> {
    match expr {
        AlgebraExpr::Literal(df) => Ok(df.as_ref().clone()),
        // Handle leaves from earlier statements: the reference executor has no
        // partitioned representation, so it materialises through the generic path.
        AlgebraExpr::Handle(handle) => handle.to_dataframe(),
        // Scan leaves need a storage layer; df-core deliberately has none (the
        // dependency points the other way). The API layer only builds ScanCsv plans
        // for engines that advertise evaluating them.
        AlgebraExpr::ScanCsv(scan) => Err(DfError::unsupported(format!(
            "the reference executor cannot evaluate SCAN_CSV({}): scans require an \
             engine with a storage layer",
            scan.path.display()
        ))),
        AlgebraExpr::Selection { input, predicate } => {
            let input = execute_reference(input)?;
            rowwise::selection(&input, predicate)
        }
        AlgebraExpr::Projection { input, columns } => {
            let input = execute_reference(input)?;
            rowwise::projection(&input, columns)
        }
        AlgebraExpr::Union { left, right } => {
            let left = execute_reference(left)?;
            let right = execute_reference(right)?;
            setops::union(&left, &right)
        }
        AlgebraExpr::Difference { left, right } => {
            let left = execute_reference(left)?;
            let right = execute_reference(right)?;
            setops::difference(&left, &right)
        }
        AlgebraExpr::CrossProduct { left, right } => {
            let left = execute_reference(left)?;
            let right = execute_reference(right)?;
            setops::cross_product(&left, &right)
        }
        AlgebraExpr::Join {
            left,
            right,
            on,
            how,
        } => {
            let left = execute_reference(left)?;
            let right = execute_reference(right)?;
            setops::join(&left, &right, on, *how)
        }
        AlgebraExpr::DropDuplicates { input } => {
            let input = execute_reference(input)?;
            group::drop_duplicates(&input)
        }
        AlgebraExpr::GroupBy {
            input,
            keys,
            aggs,
            keys_as_labels,
        } => {
            let input = execute_reference(input)?;
            group::group_by(&input, keys, aggs, *keys_as_labels)
        }
        AlgebraExpr::Sort { input, spec } => {
            let input = execute_reference(input)?;
            group::sort(&input, spec)
        }
        AlgebraExpr::Rename { input, mapping } => {
            let input = execute_reference(input)?;
            rowwise::rename(&input, mapping)
        }
        AlgebraExpr::Window {
            input,
            columns,
            func,
        } => {
            let input = execute_reference(input)?;
            window::window(&input, columns, func)
        }
        AlgebraExpr::Transpose { input } => {
            let input = execute_reference(input)?;
            reshape::transpose(&input)
        }
        AlgebraExpr::Map { input, func } => {
            let input = execute_reference(input)?;
            rowwise::map(&input, func)
        }
        AlgebraExpr::ToLabels { input, column } => {
            let input = execute_reference(input)?;
            reshape::to_labels(&input, column)
        }
        AlgebraExpr::FromLabels { input, new_column } => {
            let input = execute_reference(input)?;
            reshape::from_labels(&input, new_column)
        }
        AlgebraExpr::Limit { input, k, from_end } => {
            let input = execute_reference(input)?;
            Ok(reshape::limit(&input, *k, *from_end))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{ColumnSelector, MapFunc, Predicate};
    use df_types::cell::cell;

    #[test]
    fn executes_a_small_pipeline() {
        let df = DataFrame::from_rows(
            vec!["a", "b"],
            vec![
                vec![cell(1), cell("x")],
                vec![cell(2), cell("y")],
                vec![cell(3), cell("z")],
            ],
        )
        .unwrap();
        let expr = AlgebraExpr::literal(df)
            .select(Predicate::ColCmp {
                column: cell("a"),
                op: crate::algebra::CmpOp::Gt,
                value: cell(1),
            })
            .project(ColumnSelector::ByLabels(vec![cell("b")]))
            .map(MapFunc::StrUpper);
        let out = execute_reference(&expr).unwrap();
        assert_eq!(out.shape(), (2, 1));
        assert_eq!(out.cell(0, 0).unwrap(), &cell("Y"));
        assert_eq!(out.cell(1, 0).unwrap(), &cell("Z"));
    }
}
