//! Ordered set operators: UNION, DIFFERENCE, CROSS PRODUCT and JOIN.
//!
//! All four are *ordered analogues* of their relational counterparts (paper Table 1):
//! the result order is inherited from the left argument first, then the right.

use std::collections::{HashMap, HashSet};

use df_types::cell::{Cell, CellKey};
use df_types::domain::Domain;
use df_types::error::{DfError, DfResult};
use df_types::labels::Labels;

use crate::algebra::{JoinOn, JoinType};
use crate::dataframe::{Column, DataFrame};

/// UNION: ordered concatenation of two dataframes with the same arity. Column labels
/// and schema are taken from the left argument; rows of the left come first.
pub fn union(left: &DataFrame, right: &DataFrame) -> DfResult<DataFrame> {
    if left.n_cols() == 0 {
        return Ok(right.clone());
    }
    if right.n_cols() == 0 {
        return Ok(left.clone());
    }
    if left.n_cols() != right.n_cols() {
        return Err(DfError::shape(
            format!("{} columns", left.n_cols()),
            format!("{} columns", right.n_cols()),
        ));
    }
    let columns = left
        .columns()
        .iter()
        .zip(right.columns().iter())
        .map(|(l, r)| {
            let mut cells = l.cells().to_vec();
            cells.extend(r.cells().iter().cloned());
            Column::new(cells)
        })
        .collect();
    DataFrame::from_parts(
        columns,
        left.row_labels().concat(right.row_labels()),
        left.col_labels().clone(),
    )
}

/// Multi-way ordered UNION: concatenate every frame in order with one pre-sized
/// allocation per column, moving cell buffers instead of cloning them.
///
/// Semantically equivalent to folding [`union`] left-to-right (zero-column frames act
/// as identity, arity mismatches error), but O(total) instead of O(frames · total):
/// the fold re-copies the accumulator for every additional frame, which made
/// band-by-band assembly of a partitioned dataframe quadratic in the band count.
pub fn union_all(frames: Vec<DataFrame>) -> DfResult<DataFrame> {
    let mut frames = frames;
    if frames.len() <= 1 {
        return Ok(frames.pop().unwrap_or_else(DataFrame::empty));
    }
    // Zero-column frames are the identity element of ordered UNION; a fold over only
    // such frames yields the last one.
    if frames.iter().all(|f| f.n_cols() == 0) {
        return Ok(frames.pop().unwrap_or_else(DataFrame::empty));
    }
    frames.retain(|f| f.n_cols() > 0);
    let n_cols = frames[0].n_cols();
    if let Some(bad) = frames.iter().find(|f| f.n_cols() != n_cols) {
        return Err(DfError::shape(
            format!("{n_cols} columns"),
            format!("{} columns", bad.n_cols()),
        ));
    }
    let total_rows: usize = frames.iter().map(DataFrame::n_rows).sum();
    let col_labels = frames[0].col_labels().clone();
    // A column's domain survives concatenation only when every input agrees on it.
    let mut domains: Vec<Option<Domain>> = frames[0].schema();
    for frame in frames.iter().skip(1) {
        for (slot, domain) in domains.iter_mut().zip(frame.schema()) {
            if *slot != domain {
                *slot = None;
            }
        }
    }
    let mut cells: Vec<Vec<Cell>> = (0..n_cols)
        .map(|_| Vec::with_capacity(total_rows))
        .collect();
    let mut row_labels: Vec<Cell> = Vec::with_capacity(total_rows);
    for frame in frames {
        let (columns, labels, _) = frame.into_parts();
        for (slot, column) in cells.iter_mut().zip(columns) {
            slot.append(&mut column.into_cells());
        }
        row_labels.append(&mut labels.into_vec());
    }
    let columns = cells
        .into_iter()
        .zip(domains)
        .map(|(cells, domain)| match domain {
            Some(domain) => Column::with_domain(cells, domain),
            None => Column::new(cells),
        })
        .collect();
    DataFrame::from_parts(columns, Labels::new(row_labels), col_labels)
}

/// DIFFERENCE: rows of the left dataframe whose full-row value does not appear in the
/// right dataframe, in left order.
pub fn difference(left: &DataFrame, right: &DataFrame) -> DfResult<DataFrame> {
    if left.n_cols() != right.n_cols() && right.n_cols() != 0 {
        return Err(DfError::shape(
            format!("{} columns", left.n_cols()),
            format!("{} columns", right.n_cols()),
        ));
    }
    let right_rows: HashSet<Vec<CellKey>> =
        (0..right.n_rows()).map(|i| row_key(right, i)).collect();
    let keep: Vec<usize> = (0..left.n_rows())
        .filter(|&i| !right_rows.contains(&row_key(left, i)))
        .collect();
    left.take_rows(&keep)
}

/// CROSS PRODUCT: every left row paired with every right row, nested order (left outer,
/// right inner). Row labels are reset to positional ranks; column labels concatenate.
pub fn cross_product(left: &DataFrame, right: &DataFrame) -> DfResult<DataFrame> {
    let n = left.n_rows() * right.n_rows();
    let mut columns: Vec<Vec<Cell>> = Vec::with_capacity(left.n_cols() + right.n_cols());
    for col in left.columns() {
        let mut cells = Vec::with_capacity(n);
        for value in col.cells() {
            for _ in 0..right.n_rows() {
                cells.push(value.clone());
            }
        }
        columns.push(cells);
    }
    for col in right.columns() {
        let mut cells = Vec::with_capacity(n);
        for _ in 0..left.n_rows() {
            cells.extend(col.cells().iter().cloned());
        }
        columns.push(cells);
    }
    let col_labels = left.col_labels().concat(right.col_labels());
    DataFrame::from_parts(
        columns.into_iter().map(Column::new).collect(),
        Labels::positional(n),
        col_labels,
    )
}

/// JOIN: equi-join on shared columns or on row labels, ordered by the left argument
/// (ties broken by right order), with inner / left / outer variants.
pub fn join(
    left: &DataFrame,
    right: &DataFrame,
    on: &JoinOn,
    how: JoinType,
) -> DfResult<DataFrame> {
    match on {
        JoinOn::RowLabels => join_on_labels(left, right, how),
        JoinOn::Columns(keys) => join_on_columns(left, right, keys, how),
    }
}

fn join_on_labels(left: &DataFrame, right: &DataFrame, how: JoinType) -> DfResult<DataFrame> {
    let right_index = right.row_labels().index();
    let mut rows: Vec<(Cell, Vec<Cell>)> = Vec::new();
    let mut matched_right: HashSet<usize> = HashSet::new();
    for i in 0..left.n_rows() {
        let label = left.row_labels().get(i).cloned().unwrap_or(Cell::Null);
        let left_row = left.row(i)?;
        match right_index.get(&label.group_key()) {
            Some(positions) => {
                for &rp in positions {
                    matched_right.insert(rp);
                    let mut cells = left_row.clone();
                    cells.extend(right.row(rp)?);
                    rows.push((label.clone(), cells));
                }
            }
            None => {
                if matches!(how, JoinType::Left | JoinType::Outer) {
                    let mut cells = left_row.clone();
                    cells.extend(std::iter::repeat(Cell::Null).take(right.n_cols()));
                    rows.push((label.clone(), cells));
                }
            }
        }
    }
    if matches!(how, JoinType::Outer) {
        for rp in 0..right.n_rows() {
            if !matched_right.contains(&rp) {
                let label = right.row_labels().get(rp).cloned().unwrap_or(Cell::Null);
                let mut cells = vec![Cell::Null; left.n_cols()];
                cells.extend(right.row(rp)?);
                rows.push((label, cells));
            }
        }
    }
    let col_labels = left.col_labels().concat(right.col_labels());
    assemble(rows, col_labels)
}

fn join_on_columns(
    left: &DataFrame,
    right: &DataFrame,
    keys: &[Cell],
    how: JoinType,
) -> DfResult<DataFrame> {
    let left_key_positions: Vec<usize> = keys
        .iter()
        .map(|k| left.col_position(k))
        .collect::<DfResult<_>>()?;
    let right_key_positions: Vec<usize> = keys
        .iter()
        .map(|k| right.col_position(k))
        .collect::<DfResult<_>>()?;
    // Hash the right side by key tuple.
    let mut right_index: HashMap<Vec<CellKey>, Vec<usize>> = HashMap::new();
    for i in 0..right.n_rows() {
        let key: Vec<CellKey> = right_key_positions
            .iter()
            .map(|&j| right.columns()[j].cells()[i].group_key())
            .collect();
        right_index.entry(key).or_default().push(i);
    }
    // Right output columns exclude the (duplicated) key columns.
    let right_value_positions: Vec<usize> = (0..right.n_cols())
        .filter(|j| !right_key_positions.contains(j))
        .collect();
    let mut rows: Vec<(Cell, Vec<Cell>)> = Vec::new();
    let mut matched_right: HashSet<usize> = HashSet::new();
    for i in 0..left.n_rows() {
        let key: Vec<CellKey> = left_key_positions
            .iter()
            .map(|&j| left.columns()[j].cells()[i].group_key())
            .collect();
        let left_row = left.row(i)?;
        let label = left.row_labels().get(i).cloned().unwrap_or(Cell::Null);
        match right_index.get(&key) {
            Some(positions) => {
                for &rp in positions {
                    matched_right.insert(rp);
                    let mut cells = left_row.clone();
                    for &j in &right_value_positions {
                        cells.push(right.columns()[j].cells()[rp].clone());
                    }
                    rows.push((label.clone(), cells));
                }
            }
            None => {
                if matches!(how, JoinType::Left | JoinType::Outer) {
                    let mut cells = left_row.clone();
                    cells.extend(std::iter::repeat(Cell::Null).take(right_value_positions.len()));
                    rows.push((label.clone(), cells));
                }
            }
        }
    }
    if matches!(how, JoinType::Outer) {
        for rp in 0..right.n_rows() {
            if matched_right.contains(&rp) {
                continue;
            }
            let mut cells = vec![Cell::Null; left.n_cols()];
            // Put the right row's key values into the left key columns so the key is
            // not lost in the outer join.
            for (kp, &lkp) in left_key_positions.iter().enumerate() {
                cells[lkp] = right.columns()[right_key_positions[kp]].cells()[rp].clone();
            }
            for &j in &right_value_positions {
                cells.push(right.columns()[j].cells()[rp].clone());
            }
            rows.push((
                right.row_labels().get(rp).cloned().unwrap_or(Cell::Null),
                cells,
            ));
        }
    }
    let right_value_labels = Labels::new(
        right_value_positions
            .iter()
            .map(|&j| right.col_labels().get(j).cloned().unwrap_or(Cell::Null))
            .collect(),
    );
    let col_labels = left.col_labels().concat(&right_value_labels);
    assemble(rows, col_labels)
}

/// Build a dataframe out of `(row label, row cells)` pairs.
fn assemble(rows: Vec<(Cell, Vec<Cell>)>, col_labels: Labels) -> DfResult<DataFrame> {
    let n_cols = col_labels.len();
    let mut columns: Vec<Vec<Cell>> = vec![Vec::with_capacity(rows.len()); n_cols];
    let mut labels = Vec::with_capacity(rows.len());
    for (label, cells) in rows {
        if cells.len() != n_cols {
            return Err(DfError::shape(
                format!("rows of width {n_cols}"),
                format!("a row of width {}", cells.len()),
            ));
        }
        labels.push(label);
        for (j, cell) in cells.into_iter().enumerate() {
            columns[j].push(cell);
        }
    }
    DataFrame::from_parts(
        columns.into_iter().map(Column::new).collect(),
        Labels::new(labels),
        col_labels,
    )
}

fn row_key(df: &DataFrame, i: usize) -> Vec<CellKey> {
    df.columns()
        .iter()
        .map(|c| c.cells()[i].group_key())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::cell::cell;

    fn frame(values: Vec<Vec<Cell>>) -> DataFrame {
        DataFrame::from_rows(vec!["k", "v"], values).unwrap()
    }

    #[test]
    fn union_concatenates_in_order() {
        let left = frame(vec![vec![cell(1), cell("a")], vec![cell(2), cell("b")]]);
        let right = frame(vec![vec![cell(3), cell("c")]]);
        let out = union(&left, &right).unwrap();
        assert_eq!(out.shape(), (3, 2));
        assert_eq!(out.cell(2, 1).unwrap(), &cell("c"));
        assert_eq!(out.row_labels().as_slice(), &[cell(0), cell(1), cell(0)]);
        assert!(union(&left, &DataFrame::from_rows(vec!["x"], vec![]).unwrap()).is_err());
        // Union with an empty frame returns the other side.
        assert!(union(&left, &DataFrame::empty()).unwrap().same_data(&left));
        assert!(union(&DataFrame::empty(), &right)
            .unwrap()
            .same_data(&right));
    }

    #[test]
    fn union_all_matches_the_pairwise_fold() {
        let a = frame(vec![vec![cell(1), cell("a")], vec![cell(2), cell("b")]]);
        let b = frame(vec![vec![cell(3), cell("c")]]);
        let c = frame(vec![vec![cell(4), cell("d")], vec![cell(5), cell("e")]]);
        let folded = union(&union(&a, &b).unwrap(), &c).unwrap();
        let multi = union_all(vec![a.clone(), b.clone(), c.clone()]).unwrap();
        assert!(multi.same_data(&folded));
        // Identity and edge cases.
        assert!(union_all(vec![]).unwrap().same_data(&DataFrame::empty()));
        assert!(union_all(vec![a.clone()]).unwrap().same_data(&a));
        assert!(
            union_all(vec![DataFrame::empty(), b.clone(), DataFrame::empty()])
                .unwrap()
                .same_data(&b)
        );
        let mismatched = DataFrame::from_rows(vec!["x"], vec![vec![cell(1)]]).unwrap();
        assert!(union_all(vec![a.clone(), mismatched]).is_err());
        // Consistent known domains survive; conflicting ones reset to unknown.
        let mut typed_a = a.clone();
        typed_a.resolve_schema();
        let mut typed_b = b.clone();
        typed_b.resolve_schema();
        let merged = union_all(vec![typed_a, typed_b]).unwrap();
        assert_eq!(merged.schema()[0], Some(df_types::domain::Domain::Int));
        let merged_mixed = union_all(vec![a.clone(), b]).unwrap();
        assert_eq!(merged_mixed.schema(), vec![None, None]);
    }

    #[test]
    fn difference_removes_matching_rows_keeping_order() {
        let left = frame(vec![
            vec![cell(1), cell("a")],
            vec![cell(2), cell("b")],
            vec![cell(1), cell("a")],
        ]);
        let right = frame(vec![vec![cell(1), cell("a")]]);
        let out = difference(&left, &right).unwrap();
        assert_eq!(out.shape(), (1, 2));
        assert_eq!(out.cell(0, 1).unwrap(), &cell("b"));
        let all = difference(&left, &DataFrame::empty()).unwrap();
        assert_eq!(all.shape(), (3, 2));
    }

    #[test]
    fn cross_product_preserves_nested_order() {
        let left = DataFrame::from_rows(vec!["l"], vec![vec![cell(1)], vec![cell(2)]]).unwrap();
        let right =
            DataFrame::from_rows(vec!["r"], vec![vec![cell("x")], vec![cell("y")]]).unwrap();
        let out = cross_product(&left, &right).unwrap();
        assert_eq!(out.shape(), (4, 2));
        assert_eq!(out.cell(0, 0).unwrap(), &cell(1));
        assert_eq!(out.cell(0, 1).unwrap(), &cell("x"));
        assert_eq!(out.cell(1, 1).unwrap(), &cell("y"));
        assert_eq!(out.cell(2, 0).unwrap(), &cell(2));
    }

    #[test]
    fn inner_join_on_columns_drops_duplicate_keys() {
        let left = DataFrame::from_rows(
            vec!["id", "name"],
            vec![vec![cell(1), cell("a")], vec![cell(2), cell("b")]],
        )
        .unwrap();
        let right = DataFrame::from_rows(
            vec!["id", "score"],
            vec![vec![cell(2), cell(20)], vec![cell(3), cell(30)]],
        )
        .unwrap();
        let out = join(
            &left,
            &right,
            &JoinOn::Columns(vec![cell("id")]),
            JoinType::Inner,
        )
        .unwrap();
        assert_eq!(out.shape(), (1, 3));
        assert_eq!(
            out.col_labels().as_slice(),
            &[cell("id"), cell("name"), cell("score")]
        );
        assert_eq!(out.cell(0, 2).unwrap(), &cell(20));
    }

    #[test]
    fn left_and_outer_joins_null_extend() {
        let left = DataFrame::from_rows(
            vec!["id", "name"],
            vec![vec![cell(1), cell("a")], vec![cell(2), cell("b")]],
        )
        .unwrap();
        let right = DataFrame::from_rows(
            vec!["id", "score"],
            vec![vec![cell(2), cell(20)], vec![cell(3), cell(30)]],
        )
        .unwrap();
        let left_join = join(
            &left,
            &right,
            &JoinOn::Columns(vec![cell("id")]),
            JoinType::Left,
        )
        .unwrap();
        assert_eq!(left_join.shape(), (2, 3));
        assert_eq!(left_join.cell(0, 2).unwrap(), &Cell::Null);
        let outer = join(
            &left,
            &right,
            &JoinOn::Columns(vec![cell("id")]),
            JoinType::Outer,
        )
        .unwrap();
        assert_eq!(outer.shape(), (3, 3));
        assert_eq!(outer.cell(2, 0).unwrap(), &cell(3));
        assert_eq!(outer.cell(2, 1).unwrap(), &Cell::Null);
        assert_eq!(outer.cell(2, 2).unwrap(), &cell(30));
    }

    #[test]
    fn join_on_row_labels_matches_merge_with_index() {
        let prices = DataFrame::from_rows(vec!["price"], vec![vec![cell(699)], vec![cell(999)]])
            .unwrap()
            .with_row_labels(vec!["iPhone 11", "iPhone 11 Pro"])
            .unwrap();
        let ratings = DataFrame::from_rows(vec!["rating"], vec![vec![cell(4.8)], vec![cell(4.6)]])
            .unwrap()
            .with_row_labels(vec!["iPhone 11 Pro", "iPhone 11"])
            .unwrap();
        let out = join(&prices, &ratings, &JoinOn::RowLabels, JoinType::Inner).unwrap();
        assert_eq!(out.shape(), (2, 2));
        assert_eq!(out.row_labels().as_slice()[0], cell("iPhone 11"));
        assert_eq!(out.cell(0, 1).unwrap(), &cell(4.6));
        assert_eq!(out.cell(1, 1).unwrap(), &cell(4.8));
    }

    #[test]
    fn join_on_missing_key_errors() {
        let left = frame(vec![vec![cell(1), cell("a")]]);
        let right = frame(vec![vec![cell(1), cell("b")]]);
        assert!(join(
            &left,
            &right,
            &JoinOn::Columns(vec![cell("zz")]),
            JoinType::Inner
        )
        .is_err());
    }
}
