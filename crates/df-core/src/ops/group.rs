//! GROUPBY, DROP DUPLICATES and SORT.

use std::collections::HashMap;
use std::hash::Hasher;

use df_types::cell::{Cell, CellKey, StableHasher};
use df_types::column::{columnar_enabled, ColumnData};
use df_types::error::{DfError, DfResult};
use df_types::labels::Labels;

use super::columnar::{typed_for_keying, RawTable};
use crate::algebra::{AggFunc, Aggregation, SortSpec};
use crate::dataframe::{Column, DataFrame};

/// Streaming accumulator for one aggregation over one group. The GROUPBY kernel
/// updates these while scanning the frame once, instead of first collecting row-index
/// lists per group and then re-gathering the grouped cells per aggregate.
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    CountNonNull(i64),
    Sum {
        total: f64,
        any_numeric: bool,
    },
    Mean {
        total: f64,
        count: usize,
    },
    /// Std keeps the group's numeric values so finalisation can run the exact
    /// two-pass formula the reference semantics are defined by.
    Std(Vec<f64>),
    Min(Option<Cell>),
    Max(Option<Cell>),
    First(Option<Cell>),
    Last(Option<Cell>),
    Collect(Vec<Cell>),
}

impl AggState {
    fn new(func: &AggFunc) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::CountNonNull => AggState::CountNonNull(0),
            AggFunc::Sum => AggState::Sum {
                total: 0.0,
                any_numeric: false,
            },
            AggFunc::Mean => AggState::Mean {
                total: 0.0,
                count: 0,
            },
            AggFunc::Std => AggState::Std(Vec::new()),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::First => AggState::First(None),
            AggFunc::Last => AggState::Last(None),
            AggFunc::Collect => AggState::Collect(Vec::new()),
        }
    }

    /// Fold one cell of the aggregated column into the state. `cell` is `None` only
    /// for column-less aggregations (COUNT over whole rows).
    fn update(&mut self, cell: Option<&Cell>) {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::CountNonNull(n) => {
                if cell.is_some_and(|c| !c.is_null()) {
                    *n += 1;
                }
            }
            AggState::Sum { total, any_numeric } => {
                if let Some(v) = cell.and_then(Cell::as_f64) {
                    *total += v;
                    *any_numeric = true;
                }
            }
            AggState::Mean { total, count } => {
                if let Some(v) = cell.and_then(Cell::as_f64) {
                    *total += v;
                    *count += 1;
                }
            }
            AggState::Std(values) => {
                if let Some(v) = cell.and_then(Cell::as_f64) {
                    values.push(v);
                }
            }
            AggState::Min(best) => {
                if let Some(c) = cell.filter(|c| !c.is_null()) {
                    // `min_by` keeps the *last* of equal minima; mirror that.
                    let replace = best
                        .as_ref()
                        .map(|b| c.total_cmp(b) != std::cmp::Ordering::Greater)
                        .unwrap_or(true);
                    if replace {
                        *best = Some(c.clone());
                    }
                }
            }
            AggState::Max(best) => {
                if let Some(c) = cell.filter(|c| !c.is_null()) {
                    // `max_by` keeps the *last* of equal maxima; mirror that.
                    let replace = best
                        .as_ref()
                        .map(|b| c.total_cmp(b) != std::cmp::Ordering::Less)
                        .unwrap_or(true);
                    if replace {
                        *best = Some(c.clone());
                    }
                }
            }
            AggState::First(slot) => {
                if slot.is_none() {
                    *slot = Some(cell.cloned().unwrap_or(Cell::Null));
                }
            }
            AggState::Last(slot) => {
                *slot = Some(cell.cloned().unwrap_or(Cell::Null));
            }
            AggState::Collect(values) => {
                values.push(cell.cloned().unwrap_or(Cell::Null));
            }
        }
    }

    /// Fold row `i` of a typed column into the state without materialising a
    /// [`Cell`]: the numeric accumulators read the flat buffer directly (matching
    /// [`Cell::as_f64`] widening exactly); order- and value-carrying states
    /// materialise the one cell they keep, same as the reference path.
    fn update_typed(&mut self, column: &ColumnData, i: usize) {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::CountNonNull(n) => {
                if !column.is_null_at(i) {
                    *n += 1;
                }
            }
            AggState::Sum { total, any_numeric } => {
                if let Some(v) = column.f64_at(i) {
                    *total += v;
                    *any_numeric = true;
                }
            }
            AggState::Mean { total, count } => {
                if let Some(v) = column.f64_at(i) {
                    *total += v;
                    *count += 1;
                }
            }
            AggState::Std(values) => {
                if let Some(v) = column.f64_at(i) {
                    values.push(v);
                }
            }
            AggState::Min(_)
            | AggState::Max(_)
            | AggState::First(_)
            | AggState::Last(_)
            | AggState::Collect(_) => {
                let cell = column.get(i);
                self.update(Some(&cell));
            }
        }
    }

    fn finalize(self) -> Cell {
        match self {
            AggState::Count(n) | AggState::CountNonNull(n) => Cell::Int(n),
            AggState::Sum { total, any_numeric } => {
                if any_numeric {
                    Cell::Float(total)
                } else {
                    Cell::Null
                }
            }
            AggState::Mean { total, count } => {
                if count == 0 {
                    Cell::Null
                } else {
                    Cell::Float(total / count as f64)
                }
            }
            AggState::Std(values) => {
                if values.len() < 2 {
                    Cell::Null
                } else {
                    let mean = values.iter().sum::<f64>() / values.len() as f64;
                    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>()
                        / (values.len() - 1) as f64;
                    Cell::Float(var.sqrt())
                }
            }
            AggState::Min(best) | AggState::Max(best) => best.unwrap_or(Cell::Null),
            AggState::First(slot) | AggState::Last(slot) => slot.unwrap_or(Cell::Null),
            AggState::Collect(values) => Cell::List(values),
        }
    }
}

/// GROUPBY: group rows by the key columns (an empty key list forms a single global
/// group — the Figure 2 "groupby (1)" query) and compute the requested aggregations.
///
/// Groups are emitted in ascending key order (pandas' default `sort=True`), which is
/// also the paper's "Order: New" for GROUPBY. When `keys_as_labels` is set the key
/// values become the result's row labels (pandas' implicit TOLABELS, §4.3); otherwise
/// they stay as leading data columns.
///
/// This is a single-pass streaming kernel: each row's key cells are hashed in place
/// (no per-row `Vec<CellKey>` allocation) to find or create its group, and every
/// aggregation's internal accumulator (`AggState`) is folded forward during the same scan, so the frame is
/// read exactly once regardless of how many groups or aggregates there are.
pub fn group_by(
    df: &DataFrame,
    keys: &[Cell],
    aggs: &[Aggregation],
    keys_as_labels: bool,
) -> DfResult<DataFrame> {
    let key_positions: Vec<usize> = keys
        .iter()
        .map(|k| df.col_position(k))
        .collect::<DfResult<_>>()?;
    // Resolve aggregation input columns up front; `None` means "whole rows" and is
    // only meaningful for COUNT.
    let mut agg_positions: Vec<Option<usize>> = Vec::with_capacity(aggs.len());
    for agg in aggs {
        match &agg.column {
            Some(label) => agg_positions.push(Some(df.col_position(label)?)),
            None => {
                if agg.func != AggFunc::Count {
                    return Err(DfError::unsupported(
                        "aggregations other than Count require a column argument",
                    ));
                }
                agg_positions.push(None);
            }
        }
    }

    let columns = df.columns();
    let mut group_keys: Vec<Vec<Cell>> = Vec::new();
    let mut states: Vec<Vec<AggState>> = Vec::new();
    if columnar_enabled() {
        // Vectorized kernel: key and aggregate columns that admit a typed layout are
        // encoded once, the group table is keyed by the raw stable hash (no second
        // SipHash pass), and candidate groups are verified against a representative
        // row instead of cloned key cells.
        let typed_keys: Vec<Option<ColumnData>> = key_positions
            .iter()
            .map(|&j| typed_for_keying(&columns[j]))
            .collect();
        let typed_aggs: Vec<Option<ColumnData>> = agg_positions
            .iter()
            .map(|p| p.and_then(|j| typed_for_keying(&columns[j])))
            .collect();
        let mut table = RawTable::default();
        let mut reps: Vec<usize> = Vec::new();
        for i in 0..df.n_rows() {
            let mut hasher = StableHasher::default();
            for (typed, &j) in typed_keys.iter().zip(&key_positions) {
                match typed {
                    Some(data) => data.hash_value_into(i, &mut hasher),
                    None => columns[j].cells()[i].hash_key(&mut hasher),
                }
            }
            let candidates = table.entry(hasher.finish()).or_default();
            let gi = candidates
                .iter()
                .copied()
                .find(|&g| {
                    typed_keys
                        .iter()
                        .zip(&key_positions)
                        .all(|(typed, &j)| match typed {
                            Some(data) => data.key_eq_rows(reps[g], i),
                            None => columns[j].cells()[reps[g]].key_eq(&columns[j].cells()[i]),
                        })
                })
                .unwrap_or_else(|| {
                    let g = group_keys.len();
                    group_keys.push(
                        key_positions
                            .iter()
                            .map(|&j| columns[j].cells()[i].clone())
                            .collect(),
                    );
                    reps.push(i);
                    states.push(aggs.iter().map(|a| AggState::new(&a.func)).collect());
                    candidates.push(g);
                    g
                });
            for ((state, position), typed) in
                states[gi].iter_mut().zip(&agg_positions).zip(&typed_aggs)
            {
                match (typed, position) {
                    (Some(data), Some(_)) => state.update_typed(data, i),
                    (None, Some(j)) => state.update(Some(&columns[*j].cells()[i])),
                    (_, None) => state.update(None),
                }
            }
        }
    } else {
        // Reference kernel: hash-indexed group table (bucket hash -> group ids with
        // that hash), verified by group-key equality against the stored key cells.
        let mut table: HashMap<u64, Vec<usize>> = HashMap::new();
        for i in 0..df.n_rows() {
            let mut hasher = StableHasher::default();
            for &j in &key_positions {
                columns[j].cells()[i].hash_key(&mut hasher);
            }
            let candidates = table.entry(hasher.finish()).or_default();
            let gi = candidates
                .iter()
                .copied()
                .find(|&g| {
                    key_positions
                        .iter()
                        .zip(group_keys[g].iter())
                        .all(|(&j, key_cell)| key_cell.key_eq(&columns[j].cells()[i]))
                })
                .unwrap_or_else(|| {
                    let g = group_keys.len();
                    group_keys.push(
                        key_positions
                            .iter()
                            .map(|&j| columns[j].cells()[i].clone())
                            .collect(),
                    );
                    states.push(aggs.iter().map(|a| AggState::new(&a.func)).collect());
                    candidates.push(g);
                    g
                });
            for (state, position) in states[gi].iter_mut().zip(agg_positions.iter()) {
                state.update(position.map(|j| &columns[j].cells()[i]));
            }
        }
    }
    if df.n_rows() == 0 && keys.is_empty() {
        // A global aggregate over an empty frame still produces one (empty) group so
        // that COUNT returns 0 rather than an empty frame.
        group_keys.push(Vec::new());
        states.push(aggs.iter().map(|a| AggState::new(&a.func)).collect());
    }

    // Ascending order on key values, stable on first-occurrence order.
    let mut order: Vec<usize> = (0..group_keys.len()).collect();
    order.sort_by(|&a, &b| {
        for (x, y) in group_keys[a].iter().zip(group_keys[b].iter()) {
            let ord = x.total_cmp(y);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });

    let n_groups = order.len();
    let mut key_columns: Vec<Vec<Cell>> = vec![Vec::with_capacity(n_groups); keys.len()];
    let mut agg_columns: Vec<Vec<Cell>> = vec![Vec::with_capacity(n_groups); aggs.len()];
    let mut finalized: Vec<Option<Vec<AggState>>> = states.into_iter().map(Some).collect();
    for &g in &order {
        for (slot, cell) in key_columns.iter_mut().zip(group_keys[g].iter()) {
            slot.push(cell.clone());
        }
        let group_states = finalized[g].take().expect("each group finalized once");
        for (slot, state) in agg_columns.iter_mut().zip(group_states) {
            slot.push(state.finalize());
        }
    }

    let mut columns = Vec::new();
    let mut labels = Vec::new();
    if !keys_as_labels {
        for (key_label, cells) in keys.iter().zip(key_columns.iter()) {
            labels.push(key_label.clone());
            columns.push(Column::new(cells.clone()));
        }
    }
    for (agg, cells) in aggs.iter().zip(agg_columns) {
        labels.push(agg.output_label());
        columns.push(Column::new(cells));
    }

    let row_labels = if keys_as_labels && !keys.is_empty() {
        Labels::new(
            order
                .iter()
                .map(|&g| {
                    let key_cells = &group_keys[g];
                    if key_cells.len() == 1 {
                        key_cells[0].clone()
                    } else {
                        Cell::List(key_cells.clone())
                    }
                })
                .collect(),
        )
    } else {
        Labels::positional(n_groups)
    };

    DataFrame::from_parts(columns, row_labels, Labels::new(labels))
}

/// DROP DUPLICATES: remove rows whose full-row value already appeared earlier,
/// preserving order and keeping the first occurrence (Table 1: order from parent).
pub fn drop_duplicates(df: &DataFrame) -> DfResult<DataFrame> {
    if columnar_enabled() {
        // Vectorized kernel: stream every row through the stable key hash (typed
        // buffers where available) and verify candidates with key equality against
        // already-kept rows — no per-row `Vec<CellKey>` clone of the whole row.
        let typed: Vec<Option<ColumnData>> = df.columns().iter().map(typed_for_keying).collect();
        let mut table = RawTable::default();
        let mut keep: Vec<usize> = Vec::new();
        for i in 0..df.n_rows() {
            let mut hasher = StableHasher::default();
            for (typed, column) in typed.iter().zip(df.columns()) {
                match typed {
                    Some(data) => data.hash_value_into(i, &mut hasher),
                    None => column.cells()[i].hash_key(&mut hasher),
                }
            }
            let candidates = table.entry(hasher.finish()).or_default();
            let duplicate = candidates.iter().any(|&kept| {
                typed
                    .iter()
                    .zip(df.columns())
                    .all(|(typed, column)| match typed {
                        Some(data) => data.key_eq_rows(kept, i),
                        None => column.cells()[kept].key_eq(&column.cells()[i]),
                    })
            });
            if !duplicate {
                candidates.push(i);
                keep.push(i);
            }
        }
        return df.take_rows(&keep);
    }
    let mut seen: std::collections::HashSet<Vec<CellKey>> = std::collections::HashSet::new();
    let mut keep = Vec::new();
    for i in 0..df.n_rows() {
        let key: Vec<CellKey> = df
            .columns()
            .iter()
            .map(|c| c.cells()[i].group_key())
            .collect();
        if seen.insert(key) {
            keep.push(i);
        }
    }
    df.take_rows(&keep)
}

/// SORT: stable lexicographic sort by the given columns, producing a new order
/// (Table 1: "Order: New"). Row labels travel with their rows.
pub fn sort(df: &DataFrame, spec: &SortSpec) -> DfResult<DataFrame> {
    let key_positions: Vec<usize> = spec
        .by
        .iter()
        .map(|k| df.col_position(k))
        .collect::<DfResult<_>>()?;
    // Vectorized kernel: key columns with a typed layout are encoded once and
    // compared straight off the flat buffer ([`ColumnData::cmp_rows`] reproduces
    // `Cell::total_cmp` exactly); other key columns compare cell-to-cell as before.
    let typed_keys: Vec<Option<ColumnData>> = if columnar_enabled() {
        key_positions
            .iter()
            .map(|&j| typed_for_keying(&df.columns()[j]))
            .collect()
    } else {
        vec![None; key_positions.len()]
    };
    let mut order: Vec<usize> = (0..df.n_rows()).collect();
    let compare = |&a: &usize, &b: &usize| {
        for (idx, &j) in key_positions.iter().enumerate() {
            let mut ord = match &typed_keys[idx] {
                Some(data) => data.cmp_rows(a, b),
                None => df.columns()[j].cells()[a].total_cmp(&df.columns()[j].cells()[b]),
            };
            if !spec.is_ascending(idx) {
                ord = ord.reverse();
            }
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    };
    if spec.stable {
        order.sort_by(compare);
    } else {
        order.sort_unstable_by(compare);
    }
    df.take_rows(&order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::cell::cell;

    fn trips() -> DataFrame {
        DataFrame::from_rows(
            vec!["passenger_count", "fare", "tip"],
            vec![
                vec![cell(1), cell(10.0), cell(1.0)],
                vec![cell(2), cell(20.0), Cell::Null],
                vec![cell(1), cell(30.0), cell(3.0)],
                vec![Cell::Null, cell(5.0), cell(0.5)],
                vec![cell(2), cell(40.0), cell(4.0)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn groupby_counts_per_key_in_ascending_order() {
        let df = trips();
        let out = group_by(
            &df,
            &[cell("passenger_count")],
            &[Aggregation::count_rows()],
            false,
        )
        .unwrap();
        assert_eq!(out.shape(), (3, 2));
        // Ascending key order: 1, 2, then null last (total_cmp puts nulls last).
        assert_eq!(out.cell(0, 0).unwrap(), &cell(1));
        assert_eq!(out.cell(0, 1).unwrap(), &cell(2));
        assert_eq!(out.cell(1, 0).unwrap(), &cell(2));
        assert_eq!(out.cell(2, 0).unwrap(), &Cell::Null);
    }

    #[test]
    fn groupby_keys_as_labels_promotes_keys() {
        let df = trips();
        let out = group_by(
            &df,
            &[cell("passenger_count")],
            &[Aggregation::of("fare", AggFunc::Sum)],
            true,
        )
        .unwrap();
        assert_eq!(out.shape(), (3, 1));
        assert_eq!(out.row_labels().as_slice()[0], cell(1));
        assert_eq!(out.cell(0, 0).unwrap(), &cell(40.0));
    }

    #[test]
    fn groupby_global_group_counts_non_null() {
        let df = trips();
        let out = group_by(
            &df,
            &[],
            &[Aggregation::of("tip", AggFunc::CountNonNull).with_alias("non_null_tips")],
            false,
        )
        .unwrap();
        assert_eq!(out.shape(), (1, 1));
        assert_eq!(out.cell(0, 0).unwrap(), &cell(4));
        assert_eq!(out.col_labels().as_slice(), &[cell("non_null_tips")]);
    }

    #[test]
    fn groupby_on_empty_frame_still_returns_a_count() {
        let empty = DataFrame::from_rows(vec!["a"], vec![]).unwrap();
        let out = group_by(&empty, &[], &[Aggregation::count_rows()], false).unwrap();
        assert_eq!(out.shape(), (1, 1));
        assert_eq!(out.cell(0, 0).unwrap(), &cell(0));
    }

    #[test]
    fn aggregation_functions_cover_numeric_and_ordering() {
        let df = trips();
        let out = group_by(
            &df,
            &[cell("passenger_count")],
            &[
                Aggregation::of("fare", AggFunc::Sum).with_alias("sum"),
                Aggregation::of("fare", AggFunc::Mean).with_alias("mean"),
                Aggregation::of("fare", AggFunc::Min).with_alias("min"),
                Aggregation::of("fare", AggFunc::Max).with_alias("max"),
                Aggregation::of("fare", AggFunc::Std).with_alias("std"),
                Aggregation::of("fare", AggFunc::First).with_alias("first"),
                Aggregation::of("fare", AggFunc::Last).with_alias("last"),
            ],
            false,
        )
        .unwrap();
        // Group "1": fares 10 and 30.
        assert_eq!(out.cell(0, 1).unwrap(), &cell(40.0));
        assert_eq!(out.cell(0, 2).unwrap(), &cell(20.0));
        assert_eq!(out.cell(0, 3).unwrap(), &cell(10.0));
        assert_eq!(out.cell(0, 4).unwrap(), &cell(30.0));
        let std = out.cell(0, 5).unwrap().as_f64().unwrap();
        assert!((std - 14.1421356).abs() < 1e-6);
        assert_eq!(out.cell(0, 6).unwrap(), &cell(10.0));
        assert_eq!(out.cell(0, 7).unwrap(), &cell(30.0));
    }

    #[test]
    fn collect_produces_composite_cells() {
        let df = trips();
        let out = group_by(
            &df,
            &[cell("passenger_count")],
            &[Aggregation::of("fare", AggFunc::Collect)],
            true,
        )
        .unwrap();
        let collected = out.cell(0, 0).unwrap().as_list().unwrap();
        assert_eq!(collected, &[cell(10.0), cell(30.0)]);
    }

    #[test]
    fn aggregations_on_empty_and_non_numeric_groups_yield_null() {
        let df = DataFrame::from_rows(
            vec!["k", "v"],
            vec![vec![cell("a"), cell("x")], vec![cell("a"), cell("y")]],
        )
        .unwrap();
        let out = group_by(
            &df,
            &[cell("k")],
            &[
                Aggregation::of("v", AggFunc::Sum),
                Aggregation::of("v", AggFunc::Min).with_alias("min_v"),
                Aggregation::of("v", AggFunc::Std).with_alias("std_v"),
            ],
            false,
        )
        .unwrap();
        assert_eq!(out.cell(0, 1).unwrap(), &Cell::Null);
        assert_eq!(out.cell(0, 2).unwrap(), &cell("x"));
        assert_eq!(out.cell(0, 3).unwrap(), &Cell::Null);
    }

    #[test]
    fn count_without_column_requires_count_func() {
        let df = trips();
        let bad = group_by(
            &df,
            &[],
            &[Aggregation {
                column: None,
                func: AggFunc::Sum,
                alias: None,
            }],
            false,
        );
        assert!(bad.is_err());
    }

    #[test]
    fn drop_duplicates_keeps_first_occurrence() {
        let df = DataFrame::from_rows(
            vec!["a", "b"],
            vec![
                vec![cell(1), cell("x")],
                vec![cell(1), cell("x")],
                vec![cell(2), cell("y")],
                vec![cell(1), cell("x")],
            ],
        )
        .unwrap();
        let out = drop_duplicates(&df).unwrap();
        assert_eq!(out.shape(), (2, 2));
        assert_eq!(out.row_labels().as_slice(), &[cell(0), cell(2)]);
    }

    #[test]
    fn sort_is_stable_and_honours_descending() {
        let df = DataFrame::from_rows(
            vec!["grp", "seq"],
            vec![
                vec![cell("b"), cell(1)],
                vec![cell("a"), cell(2)],
                vec![cell("b"), cell(3)],
                vec![cell("a"), cell(4)],
            ],
        )
        .unwrap();
        let asc = sort(&df, &SortSpec::ascending(vec![cell("grp")])).unwrap();
        assert_eq!(asc.cell(0, 1).unwrap(), &cell(2));
        assert_eq!(asc.cell(1, 1).unwrap(), &cell(4));
        assert_eq!(asc.cell(2, 1).unwrap(), &cell(1));
        let desc = sort(
            &df,
            &SortSpec {
                by: vec![cell("grp"), cell("seq")],
                ascending: vec![false, true],
                stable: true,
            },
        )
        .unwrap();
        assert_eq!(desc.cell(0, 0).unwrap(), &cell("b"));
        assert_eq!(desc.cell(0, 1).unwrap(), &cell(1));
        assert!(sort(&df, &SortSpec::ascending(vec![cell("zz")])).is_err());
    }
}
