//! GROUPBY, DROP DUPLICATES and SORT.

use std::collections::HashMap;

use df_types::cell::{Cell, CellKey};
use df_types::error::{DfError, DfResult};
use df_types::labels::Labels;

use crate::algebra::{AggFunc, Aggregation, SortSpec};
use crate::dataframe::{Column, DataFrame};

/// GROUPBY: group rows by the key columns (an empty key list forms a single global
/// group — the Figure 2 "groupby (1)" query) and compute the requested aggregations.
///
/// Groups are emitted in ascending key order (pandas' default `sort=True`), which is
/// also the paper's "Order: New" for GROUPBY. When `keys_as_labels` is set the key
/// values become the result's row labels (pandas' implicit TOLABELS, §4.3); otherwise
/// they stay as leading data columns.
pub fn group_by(
    df: &DataFrame,
    keys: &[Cell],
    aggs: &[Aggregation],
    keys_as_labels: bool,
) -> DfResult<DataFrame> {
    let key_positions: Vec<usize> = keys
        .iter()
        .map(|k| df.col_position(k))
        .collect::<DfResult<_>>()?;
    // Map from key tuple to (first-occurrence order, row positions).
    let mut groups: HashMap<Vec<CellKey>, Vec<usize>> = HashMap::new();
    let mut group_order: Vec<(Vec<CellKey>, Vec<Cell>)> = Vec::new();
    for i in 0..df.n_rows() {
        let key_cells: Vec<Cell> = key_positions
            .iter()
            .map(|&j| df.columns()[j].cells()[i].clone())
            .collect();
        let key: Vec<CellKey> = key_cells.iter().map(Cell::group_key).collect();
        if !groups.contains_key(&key) {
            group_order.push((key.clone(), key_cells));
        }
        groups.entry(key).or_default().push(i);
    }
    if df.n_rows() == 0 && keys.is_empty() {
        // A global aggregate over an empty frame still produces one (empty) group so
        // that COUNT returns 0 rather than an empty frame.
        group_order.push((Vec::new(), Vec::new()));
        groups.insert(Vec::new(), Vec::new());
    }
    // Ascending order on key values.
    group_order.sort_by(|(_, a), (_, b)| {
        for (x, y) in a.iter().zip(b.iter()) {
            let ord = x.total_cmp(y);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });

    let mut key_columns: Vec<Vec<Cell>> = vec![Vec::with_capacity(group_order.len()); keys.len()];
    let mut agg_columns: Vec<Vec<Cell>> = vec![Vec::with_capacity(group_order.len()); aggs.len()];
    for (key, key_cells) in &group_order {
        let rows = &groups[key];
        for (slot, cell) in key_columns.iter_mut().zip(key_cells.iter()) {
            slot.push(cell.clone());
        }
        for (slot, agg) in agg_columns.iter_mut().zip(aggs.iter()) {
            slot.push(aggregate(df, rows, agg)?);
        }
    }

    let mut columns = Vec::new();
    let mut labels = Vec::new();
    if !keys_as_labels {
        for (key_label, cells) in keys.iter().zip(key_columns.iter()) {
            labels.push(key_label.clone());
            columns.push(Column::new(cells.clone()));
        }
    }
    for (agg, cells) in aggs.iter().zip(agg_columns) {
        labels.push(agg.output_label());
        columns.push(Column::new(cells));
    }

    let row_labels = if keys_as_labels && !keys.is_empty() {
        Labels::new(
            group_order
                .iter()
                .map(|(_, key_cells)| {
                    if key_cells.len() == 1 {
                        key_cells[0].clone()
                    } else {
                        Cell::List(key_cells.clone())
                    }
                })
                .collect(),
        )
    } else {
        Labels::positional(group_order.len())
    };

    DataFrame::from_parts(columns, row_labels, Labels::new(labels))
}

/// Compute one aggregation over the rows of one group.
fn aggregate(df: &DataFrame, rows: &[usize], agg: &Aggregation) -> DfResult<Cell> {
    let column = match &agg.column {
        None => {
            return match agg.func {
                AggFunc::Count => Ok(Cell::Int(rows.len() as i64)),
                _ => Err(DfError::unsupported(
                    "aggregations other than Count require a column argument",
                )),
            }
        }
        Some(label) => {
            let j = df.col_position(label)?;
            &df.columns()[j]
        }
    };
    let values: Vec<&Cell> = rows.iter().map(|&i| &column.cells()[i]).collect();
    let non_null: Vec<&Cell> = values.iter().copied().filter(|c| !c.is_null()).collect();
    let numeric: Vec<f64> = non_null.iter().filter_map(|c| c.as_f64()).collect();
    Ok(match agg.func {
        AggFunc::Count => Cell::Int(values.len() as i64),
        AggFunc::CountNonNull => Cell::Int(non_null.len() as i64),
        AggFunc::Sum => {
            if numeric.is_empty() {
                Cell::Null
            } else {
                Cell::Float(numeric.iter().sum())
            }
        }
        AggFunc::Mean => {
            if numeric.is_empty() {
                Cell::Null
            } else {
                Cell::Float(numeric.iter().sum::<f64>() / numeric.len() as f64)
            }
        }
        AggFunc::Std => {
            if numeric.len() < 2 {
                Cell::Null
            } else {
                let mean = numeric.iter().sum::<f64>() / numeric.len() as f64;
                let var = numeric.iter().map(|v| (v - mean).powi(2)).sum::<f64>()
                    / (numeric.len() - 1) as f64;
                Cell::Float(var.sqrt())
            }
        }
        AggFunc::Min => non_null
            .iter()
            .copied()
            .min_by(|a, b| a.total_cmp(b))
            .cloned()
            .unwrap_or(Cell::Null),
        AggFunc::Max => non_null
            .iter()
            .copied()
            .max_by(|a, b| a.total_cmp(b))
            .cloned()
            .unwrap_or(Cell::Null),
        AggFunc::First => values.first().copied().cloned().unwrap_or(Cell::Null),
        AggFunc::Last => values.last().copied().cloned().unwrap_or(Cell::Null),
        AggFunc::Collect => Cell::List(values.into_iter().cloned().collect()),
    })
}

/// DROP DUPLICATES: remove rows whose full-row value already appeared earlier,
/// preserving order and keeping the first occurrence (Table 1: order from parent).
pub fn drop_duplicates(df: &DataFrame) -> DfResult<DataFrame> {
    let mut seen: std::collections::HashSet<Vec<CellKey>> = std::collections::HashSet::new();
    let mut keep = Vec::new();
    for i in 0..df.n_rows() {
        let key: Vec<CellKey> = df
            .columns()
            .iter()
            .map(|c| c.cells()[i].group_key())
            .collect();
        if seen.insert(key) {
            keep.push(i);
        }
    }
    df.take_rows(&keep)
}

/// SORT: stable lexicographic sort by the given columns, producing a new order
/// (Table 1: "Order: New"). Row labels travel with their rows.
pub fn sort(df: &DataFrame, spec: &SortSpec) -> DfResult<DataFrame> {
    let key_positions: Vec<usize> = spec
        .by
        .iter()
        .map(|k| df.col_position(k))
        .collect::<DfResult<_>>()?;
    let mut order: Vec<usize> = (0..df.n_rows()).collect();
    let compare = |&a: &usize, &b: &usize| {
        for (idx, &j) in key_positions.iter().enumerate() {
            let x = &df.columns()[j].cells()[a];
            let y = &df.columns()[j].cells()[b];
            let mut ord = x.total_cmp(y);
            if !spec.is_ascending(idx) {
                ord = ord.reverse();
            }
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    };
    if spec.stable {
        order.sort_by(compare);
    } else {
        order.sort_unstable_by(compare);
    }
    df.take_rows(&order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::cell::cell;

    fn trips() -> DataFrame {
        DataFrame::from_rows(
            vec!["passenger_count", "fare", "tip"],
            vec![
                vec![cell(1), cell(10.0), cell(1.0)],
                vec![cell(2), cell(20.0), Cell::Null],
                vec![cell(1), cell(30.0), cell(3.0)],
                vec![Cell::Null, cell(5.0), cell(0.5)],
                vec![cell(2), cell(40.0), cell(4.0)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn groupby_counts_per_key_in_ascending_order() {
        let df = trips();
        let out = group_by(
            &df,
            &[cell("passenger_count")],
            &[Aggregation::count_rows()],
            false,
        )
        .unwrap();
        assert_eq!(out.shape(), (3, 2));
        // Ascending key order: 1, 2, then null last (total_cmp puts nulls last).
        assert_eq!(out.cell(0, 0).unwrap(), &cell(1));
        assert_eq!(out.cell(0, 1).unwrap(), &cell(2));
        assert_eq!(out.cell(1, 0).unwrap(), &cell(2));
        assert_eq!(out.cell(2, 0).unwrap(), &Cell::Null);
    }

    #[test]
    fn groupby_keys_as_labels_promotes_keys() {
        let df = trips();
        let out = group_by(
            &df,
            &[cell("passenger_count")],
            &[Aggregation::of("fare", AggFunc::Sum)],
            true,
        )
        .unwrap();
        assert_eq!(out.shape(), (3, 1));
        assert_eq!(out.row_labels().as_slice()[0], cell(1));
        assert_eq!(out.cell(0, 0).unwrap(), &cell(40.0));
    }

    #[test]
    fn groupby_global_group_counts_non_null() {
        let df = trips();
        let out = group_by(
            &df,
            &[],
            &[Aggregation::of("tip", AggFunc::CountNonNull).with_alias("non_null_tips")],
            false,
        )
        .unwrap();
        assert_eq!(out.shape(), (1, 1));
        assert_eq!(out.cell(0, 0).unwrap(), &cell(4));
        assert_eq!(out.col_labels().as_slice(), &[cell("non_null_tips")]);
    }

    #[test]
    fn groupby_on_empty_frame_still_returns_a_count() {
        let empty = DataFrame::from_rows(vec!["a"], vec![]).unwrap();
        let out = group_by(&empty, &[], &[Aggregation::count_rows()], false).unwrap();
        assert_eq!(out.shape(), (1, 1));
        assert_eq!(out.cell(0, 0).unwrap(), &cell(0));
    }

    #[test]
    fn aggregation_functions_cover_numeric_and_ordering() {
        let df = trips();
        let out = group_by(
            &df,
            &[cell("passenger_count")],
            &[
                Aggregation::of("fare", AggFunc::Sum).with_alias("sum"),
                Aggregation::of("fare", AggFunc::Mean).with_alias("mean"),
                Aggregation::of("fare", AggFunc::Min).with_alias("min"),
                Aggregation::of("fare", AggFunc::Max).with_alias("max"),
                Aggregation::of("fare", AggFunc::Std).with_alias("std"),
                Aggregation::of("fare", AggFunc::First).with_alias("first"),
                Aggregation::of("fare", AggFunc::Last).with_alias("last"),
            ],
            false,
        )
        .unwrap();
        // Group "1": fares 10 and 30.
        assert_eq!(out.cell(0, 1).unwrap(), &cell(40.0));
        assert_eq!(out.cell(0, 2).unwrap(), &cell(20.0));
        assert_eq!(out.cell(0, 3).unwrap(), &cell(10.0));
        assert_eq!(out.cell(0, 4).unwrap(), &cell(30.0));
        let std = out.cell(0, 5).unwrap().as_f64().unwrap();
        assert!((std - 14.1421356).abs() < 1e-6);
        assert_eq!(out.cell(0, 6).unwrap(), &cell(10.0));
        assert_eq!(out.cell(0, 7).unwrap(), &cell(30.0));
    }

    #[test]
    fn collect_produces_composite_cells() {
        let df = trips();
        let out = group_by(
            &df,
            &[cell("passenger_count")],
            &[Aggregation::of("fare", AggFunc::Collect)],
            true,
        )
        .unwrap();
        let collected = out.cell(0, 0).unwrap().as_list().unwrap();
        assert_eq!(collected, &[cell(10.0), cell(30.0)]);
    }

    #[test]
    fn aggregations_on_empty_and_non_numeric_groups_yield_null() {
        let df = DataFrame::from_rows(
            vec!["k", "v"],
            vec![vec![cell("a"), cell("x")], vec![cell("a"), cell("y")]],
        )
        .unwrap();
        let out = group_by(
            &df,
            &[cell("k")],
            &[
                Aggregation::of("v", AggFunc::Sum),
                Aggregation::of("v", AggFunc::Min).with_alias("min_v"),
                Aggregation::of("v", AggFunc::Std).with_alias("std_v"),
            ],
            false,
        )
        .unwrap();
        assert_eq!(out.cell(0, 1).unwrap(), &Cell::Null);
        assert_eq!(out.cell(0, 2).unwrap(), &cell("x"));
        assert_eq!(out.cell(0, 3).unwrap(), &Cell::Null);
    }

    #[test]
    fn count_without_column_requires_count_func() {
        let df = trips();
        let bad = group_by(
            &df,
            &[],
            &[Aggregation {
                column: None,
                func: AggFunc::Sum,
                alias: None,
            }],
            false,
        );
        assert!(bad.is_err());
    }

    #[test]
    fn drop_duplicates_keeps_first_occurrence() {
        let df = DataFrame::from_rows(
            vec!["a", "b"],
            vec![
                vec![cell(1), cell("x")],
                vec![cell(1), cell("x")],
                vec![cell(2), cell("y")],
                vec![cell(1), cell("x")],
            ],
        )
        .unwrap();
        let out = drop_duplicates(&df).unwrap();
        assert_eq!(out.shape(), (2, 2));
        assert_eq!(out.row_labels().as_slice(), &[cell(0), cell(2)]);
    }

    #[test]
    fn sort_is_stable_and_honours_descending() {
        let df = DataFrame::from_rows(
            vec!["grp", "seq"],
            vec![
                vec![cell("b"), cell(1)],
                vec![cell("a"), cell(2)],
                vec![cell("b"), cell(3)],
                vec![cell("a"), cell(4)],
            ],
        )
        .unwrap();
        let asc = sort(&df, &SortSpec::ascending(vec![cell("grp")])).unwrap();
        assert_eq!(asc.cell(0, 1).unwrap(), &cell(2));
        assert_eq!(asc.cell(1, 1).unwrap(), &cell(4));
        assert_eq!(asc.cell(2, 1).unwrap(), &cell(1));
        let desc = sort(
            &df,
            &SortSpec {
                by: vec![cell("grp"), cell("seq")],
                ascending: vec![false, true],
                stable: true,
            },
        )
        .unwrap();
        assert_eq!(desc.cell(0, 0).unwrap(), &cell("b"));
        assert_eq!(desc.cell(0, 1).unwrap(), &cell(1));
        assert!(sort(&df, &SortSpec::ascending(vec![cell("zz")])).is_err());
    }
}
