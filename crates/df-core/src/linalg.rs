//! Linear-algebra helpers for *matrix dataframes*.
//!
//! Paper §4.2: a homogeneous dataframe over a numeric domain "has the algebraic
//! properties required of a matrix, and can participate in linear algebra operations
//! simply by parsing its values and ignoring its labels". The workflow of Figure 1
//! ends with a covariance computation (step A3, pandas `cov`); this module provides
//! that plus the small set of dense kernels the examples and benches need.

use df_types::cell::Cell;
use df_types::domain::Domain;
use df_types::error::{DfError, DfResult};
use df_types::labels::Labels;

use crate::dataframe::{Column, DataFrame};

/// Extract the named (or all) numeric columns as dense `f64` vectors, skipping the
/// frame's labels. Null cells become `NaN`.
pub fn to_dense(df: &DataFrame) -> DfResult<(Vec<Cell>, Vec<Vec<f64>>)> {
    let numeric: Vec<usize> = (0..df.n_cols())
        .filter(|&j| df.columns()[j].peek_domain().is_numeric())
        .collect();
    if numeric.is_empty() {
        return Err(DfError::EmptyInput(
            "no numeric columns for linear algebra".into(),
        ));
    }
    let labels = numeric
        .iter()
        .map(|&j| df.col_labels().get(j).cloned().unwrap_or(Cell::Null))
        .collect();
    let data = numeric
        .iter()
        .map(|&j| {
            df.columns()[j]
                .cells()
                .iter()
                .map(|c| c.as_f64().unwrap_or(f64::NAN))
                .collect()
        })
        .collect();
    Ok((labels, data))
}

/// Pairwise sample covariance of the numeric columns (pandas `DataFrame.cov`): the
/// result is a square matrix dataframe labelled by column on both axes. Pairs with
/// fewer than two jointly non-null observations get a null covariance.
pub fn covariance(df: &DataFrame) -> DfResult<DataFrame> {
    let (labels, data) = to_dense(df)?;
    let k = data.len();
    let mut columns: Vec<Vec<Cell>> = vec![Vec::with_capacity(k); k];
    for (j, col_j) in data.iter().enumerate() {
        for col_i in data.iter() {
            columns[j].push(pairwise_cov(col_i, col_j));
        }
    }
    let columns = columns
        .into_iter()
        .map(|cells| Column::with_domain(cells, Domain::Float))
        .collect();
    DataFrame::from_parts(columns, Labels::new(labels.clone()), Labels::new(labels))
}

/// Pearson correlation matrix of the numeric columns (pandas `DataFrame.corr`).
pub fn correlation(df: &DataFrame) -> DfResult<DataFrame> {
    let (labels, data) = to_dense(df)?;
    let k = data.len();
    let mut columns: Vec<Vec<Cell>> = vec![Vec::with_capacity(k); k];
    for (j, col_j) in data.iter().enumerate() {
        for col_i in data.iter() {
            let cov = pairwise_cov(col_i, col_j);
            let var_i = pairwise_cov(col_i, col_i);
            let var_j = pairwise_cov(col_j, col_j);
            let corr = match (cov.as_f64(), var_i.as_f64(), var_j.as_f64()) {
                (Some(c), Some(vi), Some(vj)) if vi > 0.0 && vj > 0.0 => {
                    Cell::Float(c / (vi.sqrt() * vj.sqrt()))
                }
                _ => Cell::Null,
            };
            columns[j].push(corr);
        }
    }
    let columns = columns
        .into_iter()
        .map(|cells| Column::with_domain(cells, Domain::Float))
        .collect();
    DataFrame::from_parts(columns, Labels::new(labels.clone()), Labels::new(labels))
}

/// Matrix multiplication of two matrix dataframes (`left @ right`): the inner
/// dimensions must agree; labels come from the outer dimensions.
pub fn matmul(left: &DataFrame, right: &DataFrame) -> DfResult<DataFrame> {
    if !left.is_matrix() || !right.is_matrix() {
        return Err(DfError::type_mismatch(
            "matrix dataframes (homogeneous numeric)",
            "non-numeric or heterogeneous frame",
        ));
    }
    if left.n_cols() != right.n_rows() {
        return Err(DfError::shape(
            format!("inner dimensions to agree ({} columns)", left.n_cols()),
            format!("{} rows", right.n_rows()),
        ));
    }
    let (m, k) = left.shape();
    let n = right.n_cols();
    let mut columns: Vec<Vec<Cell>> = vec![Vec::with_capacity(m); n];
    for (j, column) in columns.iter_mut().enumerate() {
        for i in 0..m {
            let mut acc = 0.0;
            for p in 0..k {
                let a = left.columns()[p].cells()[i].as_f64().unwrap_or(0.0);
                let b = right.columns()[j].cells()[p].as_f64().unwrap_or(0.0);
                acc += a * b;
            }
            column.push(Cell::Float(acc));
        }
    }
    let columns = columns
        .into_iter()
        .map(|cells| Column::with_domain(cells, Domain::Float))
        .collect();
    DataFrame::from_parts(
        columns,
        left.row_labels().clone(),
        right.col_labels().clone(),
    )
}

fn pairwise_cov(a: &[f64], b: &[f64]) -> Cell {
    let pairs: Vec<(f64, f64)> = a
        .iter()
        .zip(b.iter())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .map(|(&x, &y)| (x, y))
        .collect();
    if pairs.len() < 2 {
        return Cell::Null;
    }
    let n = pairs.len() as f64;
    let mean_a = pairs.iter().map(|(x, _)| x).sum::<f64>() / n;
    let mean_b = pairs.iter().map(|(_, y)| y).sum::<f64>() / n;
    let cov = pairs
        .iter()
        .map(|(x, y)| (x - mean_a) * (y - mean_b))
        .sum::<f64>()
        / (n - 1.0);
    Cell::Float(cov)
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::cell::cell;

    fn numeric_frame() -> DataFrame {
        DataFrame::from_rows(
            vec!["x", "y", "name"],
            vec![
                vec![cell(1.0), cell(2.0), cell("a")],
                vec![cell(2.0), cell(4.0), cell("b")],
                vec![cell(3.0), cell(6.0), cell("c")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn covariance_is_symmetric_and_ignores_text_columns() {
        let cov = covariance(&numeric_frame()).unwrap();
        assert_eq!(cov.shape(), (2, 2));
        assert_eq!(cov.col_labels().as_slice(), &[cell("x"), cell("y")]);
        let var_x = cov.cell(0, 0).unwrap().as_f64().unwrap();
        let cov_xy = cov.cell(0, 1).unwrap().as_f64().unwrap();
        let cov_yx = cov.cell(1, 0).unwrap().as_f64().unwrap();
        assert!((var_x - 1.0).abs() < 1e-9);
        assert!((cov_xy - 2.0).abs() < 1e-9);
        assert_eq!(cov_xy, cov_yx);
    }

    #[test]
    fn correlation_of_perfectly_linear_columns_is_one() {
        let corr = correlation(&numeric_frame()).unwrap();
        let r = corr.cell(0, 1).unwrap().as_f64().unwrap();
        assert!((r - 1.0).abs() < 1e-9);
    }

    #[test]
    fn covariance_requires_numeric_columns_and_enough_rows() {
        let text = DataFrame::from_rows(vec!["s"], vec![vec![cell("a")]]).unwrap();
        assert!(covariance(&text).is_err());
        let single = DataFrame::from_rows(vec!["x"], vec![vec![cell(1.0)]]).unwrap();
        let cov = covariance(&single).unwrap();
        assert_eq!(cov.cell(0, 0).unwrap(), &Cell::Null);
    }

    #[test]
    fn covariance_skips_null_pairs() {
        let df = DataFrame::from_rows(
            vec!["x", "y"],
            vec![
                vec![cell(1.0), cell(1.0)],
                vec![Cell::Null, cell(2.0)],
                vec![cell(3.0), cell(5.0)],
            ],
        )
        .unwrap();
        let cov = covariance(&df).unwrap();
        let cov_xy = cov.cell(0, 1).unwrap().as_f64().unwrap();
        assert!((cov_xy - 4.0).abs() < 1e-9);
    }

    #[test]
    fn matmul_multiplies_matrix_dataframes() {
        let a = DataFrame::from_rows(
            vec!["c1", "c2"],
            vec![vec![cell(1.0), cell(2.0)], vec![cell(3.0), cell(4.0)]],
        )
        .unwrap();
        let b = DataFrame::from_rows(vec!["d1"], vec![vec![cell(5.0)], vec![cell(6.0)]]).unwrap();
        let product = matmul(&a, &b).unwrap();
        assert_eq!(product.shape(), (2, 1));
        assert_eq!(product.cell(0, 0).unwrap(), &cell(17.0));
        assert_eq!(product.cell(1, 0).unwrap(), &cell(39.0));
        // Shape and type errors.
        assert!(matmul(&a, &a).is_ok());
        let text = DataFrame::from_rows(vec!["s"], vec![vec![cell("a")]]).unwrap();
        assert!(matmul(&a, &text).is_err());
        let wrong = DataFrame::from_rows(vec!["z"], vec![vec![cell(1.0)]]).unwrap();
        assert!(matmul(&a, &wrong).is_err());
    }
}
