//! The "narrow waist": the [`Engine`] trait every execution backend implements.
//!
//! Paper §3.3 / Figure 3: the query processing layer exposes a small API based on the
//! dataframe algebra; user-facing APIs sit above it and execution backends sit below
//! it. In this workspace the pandas-style API (`df-pandas`) builds [`AlgebraExpr`]
//! trees and hands them to an [`Engine`]; the baseline (`df-baseline`), the scalable
//! engine (`df-engine`) and the reference executor here all implement the trait.
//!
//! The waist is *handle-based* (§6.1): [`Engine::execute`] returns an opaque
//! [`FrameHandle`] — engine-owned, possibly partitioned, possibly spilled — rather
//! than a fully assembled [`DataFrame`]. A statement's output feeds the next
//! statement's plan through the [`AlgebraExpr::Handle`] leaf without assembly or
//! re-partitioning; a real dataframe only exists at the explicit materialisation
//! points: [`Engine::collect`], [`Engine::head_of`] / [`Engine::tail_of`] (tabular
//! inspection), [`Engine::execute_prefix`] / [`Engine::execute_suffix`] (plan-level
//! prefix prioritisation, §6.1.2), or a write.
//!
//! [`Capabilities`] mirrors the feature matrix of Table 3 so that the bench harness can
//! print the paper's system-comparison table from live probes rather than hard-coded
//! claims.
//!
//! [`AlgebraExpr::Handle`]: crate::algebra::AlgebraExpr::Handle

use df_types::error::DfResult;

use crate::algebra::AlgebraExpr;
use crate::dataframe::DataFrame;
use crate::handle::FrameHandle;
use crate::ops;

/// Which backend an engine is (used in benchmark output and the Table 3 matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The reference executor in this crate (semantics ground truth).
    Reference,
    /// The pandas-like baseline: eager, single-threaded, row-oriented.
    Baseline,
    /// The MODIN-like scalable engine: partitioned, parallel, metadata-aware.
    Modin,
    /// A deliberately restricted engine modelling "dataframe-like" systems
    /// (Spark/Dask-style) that reject order-dependent and metadata operators.
    RelationalLike,
}

impl EngineKind {
    /// Human-readable name used in benchmark tables.
    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::Reference => "reference",
            EngineKind::Baseline => "pandas-baseline",
            EngineKind::Modin => "modin-engine",
            EngineKind::RelationalLike => "relational-like",
        }
    }
}

/// The feature matrix of paper Table 3, one flag per row of the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Ordered data model (rows keep their ingest order).
    pub ordered_model: bool,
    /// Eager (statement-at-a-time) execution is available.
    pub eager_execution: bool,
    /// Lazy / deferred execution is available.
    pub lazy_execution: bool,
    /// Rows and columns are treated equivalently (transpose-ability).
    pub row_col_equivalence: bool,
    /// Schemas may be left unspecified and induced lazily.
    pub lazy_schema: bool,
    /// Ordered analogues of the relational operators.
    pub relational_operators: bool,
    /// The MAP operator.
    pub map: bool,
    /// The WINDOW operator.
    pub window: bool,
    /// The TRANSPOSE operator.
    pub transpose: bool,
    /// The TOLABELS operator.
    pub to_labels: bool,
    /// The FROMLABELS operator.
    pub from_labels: bool,
}

impl Capabilities {
    /// The full dataframe feature set (pandas, R, and this workspace's engines).
    pub fn full_dataframe() -> Self {
        Capabilities {
            ordered_model: true,
            eager_execution: true,
            lazy_execution: false,
            row_col_equivalence: true,
            lazy_schema: true,
            relational_operators: true,
            map: true,
            window: true,
            transpose: true,
            to_labels: true,
            from_labels: true,
        }
    }

    /// The restricted feature set of dataframe-like systems (SparkSQL/Dask in Table 3):
    /// unordered (or weakly ordered), no row/column equivalence, no TRANSPOSE and no
    /// label/metadata movement.
    pub fn relational_like() -> Self {
        Capabilities {
            ordered_model: false,
            eager_execution: false,
            lazy_execution: true,
            row_col_equivalence: false,
            lazy_schema: false,
            relational_operators: true,
            map: true,
            window: true,
            transpose: false,
            to_labels: true,
            from_labels: false,
        }
    }

    /// The named feature rows in Table 3 order, for printing the comparison matrix.
    pub fn as_rows(&self) -> Vec<(&'static str, bool)> {
        vec![
            ("Ordered model", self.ordered_model),
            ("Eager execution", self.eager_execution),
            ("Lazy execution", self.lazy_execution),
            ("Row/Col Equivalency", self.row_col_equivalence),
            ("Lazy Schema", self.lazy_schema),
            ("Relational Operators", self.relational_operators),
            ("MAP", self.map),
            ("WINDOW", self.window),
            ("TRANSPOSE", self.transpose),
            ("TOLABELS", self.to_labels),
            ("FROMLABELS", self.from_labels),
        ]
    }

    /// Whether a given algebra operator is supported under these capabilities.
    pub fn supports(&self, expr: &AlgebraExpr) -> bool {
        match expr {
            AlgebraExpr::Transpose { .. } => self.transpose,
            AlgebraExpr::ToLabels { .. } => self.to_labels,
            AlgebraExpr::FromLabels { .. } => self.from_labels,
            AlgebraExpr::Window { .. } => self.window,
            AlgebraExpr::Map { .. } => self.map,
            AlgebraExpr::Sort { .. } | AlgebraExpr::Limit { .. } => self.ordered_model,
            _ => self.relational_operators,
        }
    }
}

/// A snapshot of an engine's scan-pushdown and adaptive-join counters, merged into
/// the session's statistics by the API layer. Engines without a cost-based optimizer
/// report the all-zero default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PushdownSnapshot {
    /// Chunks proven empty by min/max statistics and never parsed.
    pub chunks_skipped: u64,
    /// File columns never parsed/encoded thanks to projection pushdown.
    pub columns_pruned: u64,
    /// Predicates the optimizer folded into a scan leaf.
    pub predicates_pushed: u64,
    /// Projections the optimizer folded into a scan leaf.
    pub projections_pushed: u64,
    /// Joins executed with a broadcast build side.
    pub joins_broadcast: u64,
    /// Joins executed with a hash shuffle.
    pub joins_shuffled: u64,
}

/// An execution backend for the dataframe algebra.
///
/// `execute` is the only required evaluation method; everything else is a
/// materialisation point with a handle-generic default. Engines with a partitioned
/// representation override [`Engine::execute`] to return
/// [`FrameHandle::Partitioned`] handles and reuse them from
/// [`AlgebraExpr::Handle`](crate::algebra::AlgebraExpr) plan leaves.
pub trait Engine: Send + Sync {
    /// Which backend this is.
    fn kind(&self) -> EngineKind;

    /// Execute an algebra expression to an engine-owned result handle. No assembly
    /// happens here: the handle stays partitioned (and possibly spilled) until one of
    /// the materialisation points below is called.
    fn execute(&self, expr: &AlgebraExpr) -> DfResult<FrameHandle>;

    /// Materialisation point: assemble a handle into a full dataframe.
    fn collect(&self, handle: &FrameHandle) -> DfResult<DataFrame> {
        handle.to_dataframe()
    }

    /// Materialisation point: the first `k` rows of an already-executed handle
    /// (partition-aware engines touch only the leading partitions).
    fn head_of(&self, handle: &FrameHandle, k: usize) -> DfResult<DataFrame> {
        handle.head(k)
    }

    /// Materialisation point: the last `k` rows of an already-executed handle.
    fn tail_of(&self, handle: &FrameHandle, k: usize) -> DfResult<DataFrame> {
        handle.tail(k)
    }

    /// Execute and immediately materialise — the one-shot convenience for callers
    /// (tests, benches, differential harnesses) that want the pre-handle behaviour of
    /// the old `execute`.
    fn execute_collect(&self, expr: &AlgebraExpr) -> DfResult<DataFrame> {
        self.execute(expr)?.into_dataframe()
    }

    /// The engine's feature matrix (Table 3 row).
    fn capabilities(&self) -> Capabilities {
        Capabilities::full_dataframe()
    }

    /// The engine's cooperative cancel token, when it supports cancellation. The
    /// session's timeout/cancel entry points reach in-flight worker batches through
    /// this; the default (no token) makes cancellation a clean no-op for engines
    /// that execute synchronously in one shot.
    fn cancel_token(&self) -> Option<df_types::cancel::CancelToken> {
        None
    }

    /// Execute only enough of the expression to return the first `k` rows (§6.1.2
    /// prefix-prioritised execution). The default simply executes fully and slices;
    /// the scalable engine overrides this with partition-aware short-circuiting.
    fn execute_prefix(&self, expr: &AlgebraExpr, k: usize) -> DfResult<DataFrame> {
        self.execute(expr)?.head(k)
    }

    /// Execute only enough of the expression to return the last `k` rows.
    fn execute_suffix(&self, expr: &AlgebraExpr, k: usize) -> DfResult<DataFrame> {
        self.execute(expr)?.tail(k)
    }

    /// This engine's cumulative scan-pushdown / adaptive-join counters. The default
    /// (all zero) is correct for engines without a cost-based optimizer.
    fn pushdown_stats(&self) -> PushdownSnapshot {
        PushdownSnapshot::default()
    }

    /// Render `expr` as a human-readable plan annotated with the cost model's
    /// estimates. The default prints the plan as given; optimizing engines override
    /// this to also show the rewritten plan and which pushdowns/strategies fired.
    fn explain(&self, expr: &AlgebraExpr) -> String {
        crate::cost::render_plan(expr)
    }
}

/// The reference engine: interprets expressions with the operator semantics defined in
/// [`crate::ops`]. Used as ground truth in differential tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct ReferenceEngine;

impl Engine for ReferenceEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Reference
    }

    fn execute(&self, expr: &AlgebraExpr) -> DfResult<FrameHandle> {
        Ok(FrameHandle::from_dataframe(ops::execute_reference(expr)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{MapFunc, Predicate};
    use df_types::cell::cell;

    fn frame() -> DataFrame {
        DataFrame::from_rows(
            vec!["a", "b"],
            vec![vec![cell(1), Cell::Null], vec![cell(2), cell("x")]],
        )
        .unwrap()
    }
    use df_types::cell::Cell;

    #[test]
    fn reference_engine_executes_and_reports_kind() {
        let engine = ReferenceEngine;
        assert_eq!(engine.kind(), EngineKind::Reference);
        assert_eq!(engine.kind().label(), "reference");
        let handle = engine
            .execute(&AlgebraExpr::literal(frame()).map(MapFunc::IsNullMask))
            .unwrap();
        assert!(!handle.is_partitioned());
        assert_eq!(handle.shape(), (2, 2));
        let out = engine.collect(&handle).unwrap();
        assert_eq!(out.cell(0, 1).unwrap(), &cell(true));
        // Handle-level materialisation points slice without re-executing.
        assert_eq!(engine.head_of(&handle, 1).unwrap().n_rows(), 1);
        assert_eq!(engine.tail_of(&handle, 1).unwrap().n_rows(), 1);
        let one_shot = engine
            .execute_collect(&AlgebraExpr::literal(frame()).map(MapFunc::IsNullMask))
            .unwrap();
        assert!(one_shot.same_data(&out));
    }

    #[test]
    fn handle_leaves_resume_across_statement_boundaries() {
        let engine = ReferenceEngine;
        let first = engine
            .execute(&AlgebraExpr::literal(frame()).select(Predicate::True))
            .unwrap();
        let second = engine
            .execute(&AlgebraExpr::handle(first).map(MapFunc::IsNullMask))
            .unwrap();
        assert_eq!(engine.collect(&second).unwrap().shape(), (2, 2));
    }

    #[test]
    fn prefix_and_suffix_defaults_slice_the_result() {
        let engine = ReferenceEngine;
        let expr = AlgebraExpr::literal(frame()).select(Predicate::True);
        assert_eq!(engine.execute_prefix(&expr, 1).unwrap().shape(), (1, 2));
        let suffix = engine.execute_suffix(&expr, 1).unwrap();
        assert_eq!(suffix.cell(0, 0).unwrap(), &cell(2));
    }

    #[test]
    fn capability_matrix_matches_table3_shape() {
        let full = Capabilities::full_dataframe();
        assert_eq!(full.as_rows().len(), 11);
        assert!(full.supports(&AlgebraExpr::literal(frame()).transpose()));
        let restricted = Capabilities::relational_like();
        assert!(!restricted.supports(&AlgebraExpr::literal(frame()).transpose()));
        assert!(!restricted.supports(&AlgebraExpr::literal(frame()).from_labels("idx")));
        assert!(restricted.supports(&AlgebraExpr::literal(frame()).select(Predicate::True)));
        assert!(restricted.supports(&AlgebraExpr::literal(frame()).map(MapFunc::IsNullMask)));
        assert!(!restricted.supports(&AlgebraExpr::literal(frame()).limit(5, false)));
    }

    #[test]
    fn engine_kind_labels_are_distinct() {
        let labels: std::collections::HashSet<_> = [
            EngineKind::Reference,
            EngineKind::Baseline,
            EngineKind::Modin,
            EngineKind::RelationalLike,
        ]
        .iter()
        .map(|k| k.label())
        .collect();
        assert_eq!(labels.len(), 4);
    }
}
