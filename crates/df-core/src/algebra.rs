//! The dataframe algebra of paper §4.3 (Table 1), represented as an expression tree.
//!
//! The algebra has ordered analogues of the extended relational operators (SELECTION,
//! PROJECTION, UNION, DIFFERENCE, CROSS PRODUCT / JOIN, DROP DUPLICATES, GROUPBY, SORT,
//! RENAME), the SQL WINDOW operator, and four operators unique to dataframes:
//! TRANSPOSE, MAP, TOLABELS and FROMLABELS. Expressions are plain data: the pandas API
//! layer *builds* them, the optimizer *rewrites* them, and each engine *interprets*
//! them. That is the "narrow waist" of the MODIN architecture (paper §3.3, Figure 3).
//!
//! All function-valued parameters (predicates, map functions, aggregates, window
//! functions) are enums of named built-ins with an escape hatch for user-defined
//! closures, so that rewrite rules can reason about the common cases (e.g. "this MAP
//! has a statically known output type", §5.1.1) while still supporting arbitrary UDFs.

use std::fmt;
use std::sync::Arc;

use df_types::cell::Cell;
use df_types::domain::Domain;
use df_types::error::{DfError, DfResult};

use crate::dataframe::DataFrame;
use crate::handle::FrameHandle;

/// A lightweight view of one logical row handed to user-defined functions.
#[derive(Debug, Clone, Copy)]
pub struct RowView<'a> {
    /// Column labels, aligned with `cells`.
    pub col_labels: &'a [Cell],
    /// The row's label.
    pub row_label: &'a Cell,
    /// The row's cells.
    pub cells: &'a [Cell],
}

impl<'a> RowView<'a> {
    /// The cell under the given column label, if present.
    pub fn get(&self, label: &Cell) -> Option<&'a Cell> {
        let key = label.group_key();
        self.col_labels
            .iter()
            .position(|l| l.group_key() == key)
            .map(|j| &self.cells[j])
    }
}

/// Selects a subset of columns for PROJECTION, WINDOW and aggregation arguments.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnSelector {
    /// Every column.
    All,
    /// Columns by label, in the given order.
    ByLabels(Vec<Cell>),
    /// Columns by position, in the given order.
    ByPositions(Vec<usize>),
    /// Every column whose (peeked) domain is numeric — used by `cov`, `get_dummies`
    /// complement, and the MAP normalisation example in §4.3.
    Numeric,
    /// Every column except the named ones.
    Excluding(Vec<Cell>),
}

impl ColumnSelector {
    /// Resolve the selector to concrete column positions for a frame.
    pub fn resolve(&self, df: &DataFrame) -> DfResult<Vec<usize>> {
        match self {
            ColumnSelector::All => Ok((0..df.n_cols()).collect()),
            ColumnSelector::ByPositions(positions) => {
                for &p in positions {
                    if p >= df.n_cols() {
                        return Err(DfError::IndexOutOfBounds {
                            axis: "column",
                            index: p,
                            len: df.n_cols(),
                        });
                    }
                }
                Ok(positions.clone())
            }
            ColumnSelector::ByLabels(labels) => labels.iter().map(|l| df.col_position(l)).collect(),
            ColumnSelector::Numeric => Ok((0..df.n_cols())
                .filter(|&j| df.columns()[j].peek_domain().is_numeric())
                .collect()),
            ColumnSelector::Excluding(labels) => {
                let excluded: Vec<usize> = labels
                    .iter()
                    .map(|l| df.col_position(l))
                    .collect::<DfResult<_>>()?;
                Ok((0..df.n_cols()).filter(|j| !excluded.contains(j)).collect())
            }
        }
    }
}

/// Comparison operators for simple column predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Evaluate the comparison between two cells using the total cell ordering.
    pub fn eval(&self, left: &Cell, right: &Cell) -> bool {
        if left.is_null() || right.is_null() {
            return false;
        }
        self.eval_ord(left.total_cmp(right))
    }

    /// Decide the comparison from an already-computed ordering. The vectorized
    /// predicate kernel computes orderings straight off typed values and funnels
    /// them through here so both paths share one decision table.
    #[inline]
    pub fn eval_ord(&self, ord: std::cmp::Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == std::cmp::Ordering::Equal,
            CmpOp::Ne => ord != std::cmp::Ordering::Equal,
            CmpOp::Lt => ord == std::cmp::Ordering::Less,
            CmpOp::Le => ord != std::cmp::Ordering::Greater,
            CmpOp::Gt => ord == std::cmp::Ordering::Greater,
            CmpOp::Ge => ord != std::cmp::Ordering::Less,
        }
    }
}

/// Row predicate for SELECTION.
#[derive(Clone)]
pub enum Predicate {
    /// Always true (identity selection).
    True,
    /// Compare a named column's value against a constant.
    ColCmp {
        /// Column label.
        column: Cell,
        /// Comparison operator.
        op: CmpOp,
        /// Constant to compare with.
        value: Cell,
    },
    /// True when the named column is null in this row.
    IsNull {
        /// Column label.
        column: Cell,
    },
    /// True when the named column is non-null in this row.
    NotNull {
        /// Column label.
        column: Cell,
    },
    /// Select rows by position `start..end` (ordered positional selection — dataframes
    /// support SELECTION on row position, §5.2.1).
    PositionRange {
        /// First position included.
        start: usize,
        /// First position excluded.
        end: usize,
    },
    /// Logical negation.
    Not(Box<Predicate>),
    /// Logical conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Logical disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Arbitrary user predicate over the whole row.
    Custom {
        /// Name used for display / plan fingerprints.
        name: String,
        /// The predicate body.
        func: Arc<dyn Fn(RowView<'_>) -> bool + Send + Sync>,
    },
}

impl Predicate {
    /// True when the predicate is *sargable* for scan pushdown: built only from
    /// column/constant comparisons, null tests and boolean combinators — no
    /// positional selection (row positions change once a scan filters during the
    /// parse loop) and no opaque UDFs (which may read columns the planner cannot
    /// see).
    ///
    /// ```
    /// use df_core::algebra::{CmpOp, Predicate};
    /// use df_types::cell::cell;
    ///
    /// let sargable = Predicate::And(
    ///     Box::new(Predicate::ColCmp { column: cell("a"), op: CmpOp::Gt, value: cell(1) }),
    ///     Box::new(Predicate::NotNull { column: cell("b") }),
    /// );
    /// assert!(sargable.scan_pushable());
    /// assert!(!Predicate::PositionRange { start: 0, end: 5 }.scan_pushable());
    /// ```
    pub fn scan_pushable(&self) -> bool {
        match self {
            Predicate::True
            | Predicate::ColCmp { .. }
            | Predicate::IsNull { .. }
            | Predicate::NotNull { .. } => true,
            Predicate::Not(inner) => inner.scan_pushable(),
            Predicate::And(a, b) | Predicate::Or(a, b) => a.scan_pushable() && b.scan_pushable(),
            Predicate::PositionRange { .. } | Predicate::Custom { .. } => false,
        }
    }

    /// Every column label the predicate reads, or `None` when it may read columns the
    /// planner cannot enumerate (opaque UDFs). Duplicates are removed, first
    /// occurrence order kept.
    pub fn referenced_columns(&self) -> Option<Vec<Cell>> {
        fn walk(pred: &Predicate, out: &mut Vec<Cell>) -> bool {
            match pred {
                Predicate::True | Predicate::PositionRange { .. } => true,
                Predicate::ColCmp { column, .. }
                | Predicate::IsNull { column }
                | Predicate::NotNull { column } => {
                    if !out.contains(column) {
                        out.push(column.clone());
                    }
                    true
                }
                Predicate::Not(inner) => walk(inner, out),
                Predicate::And(a, b) | Predicate::Or(a, b) => walk(a, out) && walk(b, out),
                Predicate::Custom { .. } => false,
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out).then_some(out)
    }
}

impl Predicate {
    /// Evaluate the predicate for the row at `position`.
    pub fn matches(&self, position: usize, row: RowView<'_>) -> bool {
        match self {
            Predicate::True => true,
            Predicate::ColCmp { column, op, value } => row
                .get(column)
                .map(|cell| op.eval(cell, value))
                .unwrap_or(false),
            Predicate::IsNull { column } => row.get(column).map(Cell::is_null).unwrap_or(false),
            Predicate::NotNull { column } => row.get(column).map(|c| !c.is_null()).unwrap_or(false),
            Predicate::PositionRange { start, end } => position >= *start && position < *end,
            Predicate::Not(inner) => !inner.matches(position, row),
            Predicate::And(a, b) => a.matches(position, row) && b.matches(position, row),
            Predicate::Or(a, b) => a.matches(position, row) || b.matches(position, row),
            Predicate::Custom { func, .. } => func(row),
        }
    }

    /// True when the predicate never inspects cell *values* (only positions), in which
    /// case schema induction can be skipped entirely (§5.1.1, "operations which merely
    /// shuffle rows around").
    pub fn is_position_only(&self) -> bool {
        match self {
            Predicate::True | Predicate::PositionRange { .. } => true,
            Predicate::Not(inner) => inner.is_position_only(),
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.is_position_only() && b.is_position_only()
            }
            _ => false,
        }
    }
}

impl fmt::Debug for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "True"),
            Predicate::ColCmp { column, op, value } => {
                write!(f, "{column} {op:?} {value}")
            }
            Predicate::IsNull { column } => write!(f, "IsNull({column})"),
            Predicate::NotNull { column } => write!(f, "NotNull({column})"),
            Predicate::PositionRange { start, end } => write!(f, "Position[{start}..{end})"),
            Predicate::Not(p) => write!(f, "Not({p:?})"),
            Predicate::And(a, b) => write!(f, "({a:?} AND {b:?})"),
            Predicate::Or(a, b) => write!(f, "({a:?} OR {b:?})"),
            Predicate::Custom { name, .. } => write!(f, "Custom({name})"),
        }
    }
}

/// MAP functions: applied uniformly to every row, producing a row of fixed arity
/// (paper §4.3). Built-ins cover the rewrites of Table 2 and the workloads of Figure 2;
/// `Custom` covers arbitrary UDFs.
#[derive(Clone)]
pub enum MapFunc {
    /// Replace every cell with a boolean null indicator (pandas `isna` — the Figure 2
    /// "map" query: "check if each value in the dataframe is null").
    IsNullMask,
    /// Replace nulls with the given value (pandas `fillna`).
    FillNull(Cell),
    /// Upper-case every string cell (pandas `str.upper`).
    StrUpper,
    /// Lower-case every string cell.
    StrLower,
    /// Add a constant to every numeric cell.
    NumericAdd(f64),
    /// Multiply every numeric cell by a constant.
    NumericMul(f64),
    /// Cast the named columns to the given domains (pandas `astype`).
    Cast(Vec<(Cell, Domain)>),
    /// Parse raw string cells using each column's induced domain (explicit `S` + `p_i`).
    ParseRaw,
    /// Normalise the numeric cells of each row so they sum to 1.0 — the paper's example
    /// of a generic MAP that cannot be expressed schema-independently in SQL (§4.3).
    NormalizeNumeric,
    /// One-hot encode the named column against the provided category list, replacing it
    /// with one indicator column per category (pandas `get_dummies` on one column).
    OneHot {
        /// Column to encode.
        column: Cell,
        /// The full category list (defines the new columns, in order).
        categories: Vec<Cell>,
    },
    /// Flatten GROUPBY `collect` output into a pivoted row (one output column per entry
    /// of `output_labels`, values drawn from `value_source` aligned by `label_source`).
    PivotFlatten {
        /// Collected column whose values name the output columns.
        label_source: Cell,
        /// Collected column whose values fill the output cells.
        value_source: Cell,
        /// Full ordered list of output column labels.
        output_labels: Vec<Cell>,
    },
    /// Keep only the cells of the selected columns (a value-preserving projection used
    /// in MAP form by `reindex_like`, §4.4).
    ProjectValues(ColumnSelector),
    /// Arbitrary per-row function with explicit output arity.
    Custom {
        /// Name used for display / plan fingerprints.
        name: String,
        /// Output column labels (fixed arity, per the MAP definition).
        output_labels: Vec<Cell>,
        /// Optional statically known output domains (lets the optimizer skip induction).
        output_domains: Option<Vec<Domain>>,
        /// The row function.
        func: Arc<dyn Fn(RowView<'_>) -> Vec<Cell> + Send + Sync>,
    },
    /// Arbitrary per-cell function applied to every cell (pandas `transform`/`applymap`).
    PerCell {
        /// Name used for display / plan fingerprints.
        name: String,
        /// The cell function.
        func: Arc<dyn Fn(&Cell) -> Cell + Send + Sync>,
    },
}

impl MapFunc {
    /// The output domains of this map when they are statically known, letting the
    /// planner skip schema induction on the result (§5.1.1: "UDFs with known output
    /// types").
    pub fn static_output_domain(&self) -> Option<Domain> {
        match self {
            MapFunc::IsNullMask => Some(Domain::Bool),
            MapFunc::NumericAdd(_) | MapFunc::NumericMul(_) | MapFunc::NormalizeNumeric => {
                Some(Domain::Float)
            }
            _ => None,
        }
    }

    /// True when the map keeps the input arity and column labels unchanged.
    pub fn preserves_arity(&self) -> bool {
        !matches!(
            self,
            MapFunc::OneHot { .. }
                | MapFunc::PivotFlatten { .. }
                | MapFunc::Custom { .. }
                | MapFunc::ProjectValues(_)
        )
    }
}

impl fmt::Debug for MapFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapFunc::IsNullMask => write!(f, "IsNullMask"),
            MapFunc::FillNull(v) => write!(f, "FillNull({v})"),
            MapFunc::StrUpper => write!(f, "StrUpper"),
            MapFunc::StrLower => write!(f, "StrLower"),
            MapFunc::NumericAdd(v) => write!(f, "NumericAdd({v})"),
            MapFunc::NumericMul(v) => write!(f, "NumericMul({v})"),
            MapFunc::Cast(cols) => write!(f, "Cast({cols:?})"),
            MapFunc::ParseRaw => write!(f, "ParseRaw"),
            MapFunc::NormalizeNumeric => write!(f, "NormalizeNumeric"),
            MapFunc::OneHot { column, categories } => {
                write!(f, "OneHot({column}, {} categories)", categories.len())
            }
            MapFunc::PivotFlatten {
                label_source,
                value_source,
                output_labels,
            } => write!(
                f,
                "PivotFlatten({label_source} -> {value_source}, {} labels)",
                output_labels.len()
            ),
            MapFunc::ProjectValues(selector) => write!(f, "ProjectValues({selector:?})"),
            MapFunc::Custom { name, .. } => write!(f, "Custom({name})"),
            MapFunc::PerCell { name, .. } => write!(f, "PerCell({name})"),
        }
    }
}

/// Aggregate functions for GROUPBY.
#[derive(Debug, Clone, PartialEq)]
pub enum AggFunc {
    /// Number of rows in the group.
    Count,
    /// Number of non-null values of the aggregated column in the group.
    CountNonNull,
    /// Sum of numeric values.
    Sum,
    /// Arithmetic mean of numeric values.
    Mean,
    /// Minimum by the total cell ordering.
    Min,
    /// Maximum by the total cell ordering.
    Max,
    /// Sample standard deviation.
    Std,
    /// First value in group order.
    First,
    /// Last value in group order.
    Last,
    /// The paper's `collect`: gather the group's values into a composite cell, enabling
    /// pivot and other reshaping macros (§4.3).
    Collect,
}

/// One aggregation: which column to aggregate, how, and what to call the result.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregation {
    /// Input column; `None` aggregates over the whole row (only meaningful for Count).
    pub column: Option<Cell>,
    /// The aggregate function.
    pub func: AggFunc,
    /// Output column label; defaults to the input label.
    pub alias: Option<Cell>,
}

impl Aggregation {
    /// Aggregate a named column.
    pub fn of(column: impl Into<Cell>, func: AggFunc) -> Self {
        Aggregation {
            column: Some(column.into()),
            func,
            alias: None,
        }
    }

    /// Count rows per group.
    pub fn count_rows() -> Self {
        Aggregation {
            column: None,
            func: AggFunc::Count,
            alias: Some(Cell::Str("count".into())),
        }
    }

    /// Rename the output column.
    pub fn with_alias(mut self, alias: impl Into<Cell>) -> Self {
        self.alias = Some(alias.into());
        self
    }

    /// The output label of the aggregation.
    pub fn output_label(&self) -> Cell {
        if let Some(alias) = &self.alias {
            return alias.clone();
        }
        match &self.column {
            Some(c) => c.clone(),
            None => Cell::Str("count".into()),
        }
    }
}

/// WINDOW functions (paper §4.3: "largely analogous to SQL window extensions", except
/// that the dataframe's inherent order makes ORDER BY optional).
#[derive(Debug, Clone, PartialEq)]
pub enum WindowFunc {
    /// Cumulative sum.
    CumSum,
    /// Cumulative maximum (pandas `cummax`).
    CumMax,
    /// Cumulative minimum.
    CumMin,
    /// Difference with the value `lag` rows earlier (pandas `diff`).
    Diff {
        /// Lag distance in rows.
        lag: usize,
    },
    /// Shift values down by `offset` rows, filling vacated cells with null (pandas
    /// `shift`).
    Shift {
        /// Shift distance in rows (positive shifts down).
        offset: i64,
    },
    /// Rolling mean over a trailing window of `size` rows.
    RollingMean {
        /// Window size in rows.
        size: usize,
    },
    /// Rolling sum over a trailing window of `size` rows.
    RollingSum {
        /// Window size in rows.
        size: usize,
    },
}

/// How a JOIN matches rows.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinOn {
    /// Join on one or more data columns present in both inputs.
    Columns(Vec<Cell>),
    /// Join on the row labels of both inputs (pandas `merge(left_index=True,
    /// right_index=True)`, used in workflow step A2).
    RowLabels,
}

/// Join variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Keep only matching rows.
    Inner,
    /// Keep all left rows, null-extending unmatched ones.
    Left,
    /// Keep all rows from both sides.
    Outer,
}

/// Sort specification for SORT.
#[derive(Debug, Clone, PartialEq)]
pub struct SortSpec {
    /// Columns to sort by, in priority order.
    pub by: Vec<Cell>,
    /// Per-column ascending flag (recycled if shorter than `by`).
    pub ascending: Vec<bool>,
    /// Whether the sort must be stable (dataframe users rely on stability to preserve
    /// the prior order of ties — the logical order is part of the data model).
    pub stable: bool,
}

impl SortSpec {
    /// Ascending stable sort by the given columns.
    pub fn ascending(by: Vec<Cell>) -> Self {
        SortSpec {
            by,
            ascending: vec![true],
            stable: true,
        }
    }

    /// Whether column `i` in `by` sorts ascending.
    pub fn is_ascending(&self, i: usize) -> bool {
        self.ascending
            .get(i)
            .or_else(|| self.ascending.last())
            .copied()
            .unwrap_or(true)
    }
}

/// An expression in the dataframe algebra. Executing an expression yields a
/// [`DataFrame`].
#[derive(Debug, Clone)]
pub enum AlgebraExpr {
    /// A literal (already materialised) dataframe. Stored behind `Arc` so expression
    /// trees do not copy large frames.
    Literal(Arc<DataFrame>),
    /// An engine-owned result handle from an earlier statement (§6.1): the leaf that
    /// lets one statement's output feed the next statement's plan without assembling
    /// or re-partitioning it. Engines that recognise the handle resume from their own
    /// partitioned representation; others fall back to materialising it.
    Handle(FrameHandle),
    /// A first-class CSV scan leaf (the tentpole of the cost-based optimizer): a
    /// file path plus parse options, per-chunk statistics cached after the first
    /// plan/parse pass, and the projection/predicate the optimizer has pushed into
    /// it. Engines with a storage layer evaluate it with chunk skipping and
    /// column-pruned parsing; the reference executor (which has none) rejects it.
    ScanCsv(Arc<crate::scan::ScanCsv>),
    /// SELECTION: keep the rows satisfying the predicate, preserving their order.
    Selection {
        /// Input expression.
        input: Box<AlgebraExpr>,
        /// Row predicate.
        predicate: Predicate,
    },
    /// PROJECTION: keep (and reorder) the selected columns.
    Projection {
        /// Input expression.
        input: Box<AlgebraExpr>,
        /// Column selector.
        columns: ColumnSelector,
    },
    /// UNION: ordered concatenation, left argument first (paper Table 1 footnote †).
    Union {
        /// Left input (its rows come first).
        left: Box<AlgebraExpr>,
        /// Right input.
        right: Box<AlgebraExpr>,
    },
    /// DIFFERENCE: rows of the left input not present in the right, in left order.
    Difference {
        /// Left input.
        left: Box<AlgebraExpr>,
        /// Right input.
        right: Box<AlgebraExpr>,
    },
    /// CROSS PRODUCT: nested-order pairing of left and right rows.
    CrossProduct {
        /// Left input (outer order).
        left: Box<AlgebraExpr>,
        /// Right input (inner order).
        right: Box<AlgebraExpr>,
    },
    /// JOIN: equi-join on columns or on row labels, ordered by the left argument.
    Join {
        /// Left input.
        left: Box<AlgebraExpr>,
        /// Right input.
        right: Box<AlgebraExpr>,
        /// Join keys.
        on: JoinOn,
        /// Join variant.
        how: JoinType,
    },
    /// DROP DUPLICATES: remove duplicate rows, keeping the first occurrence.
    DropDuplicates {
        /// Input expression.
        input: Box<AlgebraExpr>,
    },
    /// GROUPBY: group on key columns (empty = one global group) and aggregate.
    GroupBy {
        /// Input expression.
        input: Box<AlgebraExpr>,
        /// Grouping key columns (may be empty).
        keys: Vec<Cell>,
        /// Aggregations to compute per group.
        aggs: Vec<Aggregation>,
        /// Whether group keys become the result's row labels (pandas' implicit
        /// TOLABELS on groupby, §4.3).
        keys_as_labels: bool,
    },
    /// SORT: lexicographic stable sort producing a new order.
    Sort {
        /// Input expression.
        input: Box<AlgebraExpr>,
        /// Sort specification.
        spec: SortSpec,
    },
    /// RENAME: change column labels.
    Rename {
        /// Input expression.
        input: Box<AlgebraExpr>,
        /// `(old label, new label)` pairs.
        mapping: Vec<(Cell, Cell)>,
    },
    /// WINDOW: apply a sliding-window function to the selected columns.
    Window {
        /// Input expression.
        input: Box<AlgebraExpr>,
        /// Columns to apply the window function to.
        columns: ColumnSelector,
        /// The window function.
        func: WindowFunc,
    },
    /// TRANSPOSE: swap rows and columns (data and metadata).
    Transpose {
        /// Input expression.
        input: Box<AlgebraExpr>,
    },
    /// MAP: apply a function uniformly to every row.
    Map {
        /// Input expression.
        input: Box<AlgebraExpr>,
        /// The row function.
        func: MapFunc,
    },
    /// TOLABELS: promote a data column to the row labels, removing it from the data.
    ToLabels {
        /// Input expression.
        input: Box<AlgebraExpr>,
        /// The column to promote.
        column: Cell,
    },
    /// FROMLABELS: demote the row labels into a new data column at position 0 and reset
    /// the row labels to positional ranks.
    FromLabels {
        /// Input expression.
        input: Box<AlgebraExpr>,
        /// Label for the new column.
        new_column: Cell,
    },
    /// LIMIT: keep the first (or last) `k` rows. Not one of the 14 algebra operators —
    /// it is expressible as a positional SELECTION — but kept as an explicit node so
    /// engines can prioritise prefix/suffix execution (§6.1.2).
    Limit {
        /// Input expression.
        input: Box<AlgebraExpr>,
        /// Number of rows to keep.
        k: usize,
        /// Keep the suffix instead of the prefix.
        from_end: bool,
    },
}

impl AlgebraExpr {
    /// Wrap a dataframe as a literal expression.
    pub fn literal(df: DataFrame) -> Self {
        AlgebraExpr::Literal(Arc::new(df))
    }

    /// Wrap an already-shared dataframe as a literal expression.
    pub fn literal_arc(df: Arc<DataFrame>) -> Self {
        AlgebraExpr::Literal(df)
    }

    /// Wrap an engine-owned result handle as a plan leaf.
    pub fn handle(handle: FrameHandle) -> Self {
        AlgebraExpr::Handle(handle)
    }

    /// Wrap a CSV scan as a plan leaf.
    pub fn scan_csv(scan: crate::scan::ScanCsv) -> Self {
        AlgebraExpr::ScanCsv(Arc::new(scan))
    }

    /// The leaf values of the plan — every literal and handle, as cheap
    /// reference-counted [`FrameHandle`]s. These are exactly the allocations the
    /// plan's [`AlgebraExpr::fingerprint`] identifies by address, so holding the
    /// returned vec pins the fingerprint's identity pointers without retaining the
    /// operator tree itself.
    pub fn leaf_pins(&self) -> Vec<FrameHandle> {
        fn walk(expr: &AlgebraExpr, out: &mut Vec<FrameHandle>) {
            match expr {
                AlgebraExpr::Literal(df) => out.push(FrameHandle::from_shared(Arc::clone(df))),
                AlgebraExpr::Handle(handle) => out.push(handle.clone()),
                other => other.children().iter().for_each(|c| walk(c, out)),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// The operator name (used in plan displays and fingerprints).
    pub fn name(&self) -> &'static str {
        match self {
            AlgebraExpr::Literal(_) => "LITERAL",
            AlgebraExpr::Handle(_) => "HANDLE",
            AlgebraExpr::ScanCsv(_) => "SCAN_CSV",
            AlgebraExpr::Selection { .. } => "SELECTION",
            AlgebraExpr::Projection { .. } => "PROJECTION",
            AlgebraExpr::Union { .. } => "UNION",
            AlgebraExpr::Difference { .. } => "DIFFERENCE",
            AlgebraExpr::CrossProduct { .. } => "CROSS_PRODUCT",
            AlgebraExpr::Join { .. } => "JOIN",
            AlgebraExpr::DropDuplicates { .. } => "DROP_DUPLICATES",
            AlgebraExpr::GroupBy { .. } => "GROUPBY",
            AlgebraExpr::Sort { .. } => "SORT",
            AlgebraExpr::Rename { .. } => "RENAME",
            AlgebraExpr::Window { .. } => "WINDOW",
            AlgebraExpr::Transpose { .. } => "TRANSPOSE",
            AlgebraExpr::Map { .. } => "MAP",
            AlgebraExpr::ToLabels { .. } => "TOLABELS",
            AlgebraExpr::FromLabels { .. } => "FROMLABELS",
            AlgebraExpr::Limit { .. } => "LIMIT",
        }
    }

    /// Child expressions (0 for literals, 1 for unary, 2 for binary operators).
    pub fn children(&self) -> Vec<&AlgebraExpr> {
        match self {
            AlgebraExpr::Literal(_) | AlgebraExpr::Handle(_) | AlgebraExpr::ScanCsv(_) => vec![],
            AlgebraExpr::Selection { input, .. }
            | AlgebraExpr::Projection { input, .. }
            | AlgebraExpr::DropDuplicates { input }
            | AlgebraExpr::GroupBy { input, .. }
            | AlgebraExpr::Sort { input, .. }
            | AlgebraExpr::Rename { input, .. }
            | AlgebraExpr::Window { input, .. }
            | AlgebraExpr::Transpose { input }
            | AlgebraExpr::Map { input, .. }
            | AlgebraExpr::ToLabels { input, .. }
            | AlgebraExpr::FromLabels { input, .. }
            | AlgebraExpr::Limit { input, .. } => vec![input],
            AlgebraExpr::Union { left, right }
            | AlgebraExpr::Difference { left, right }
            | AlgebraExpr::CrossProduct { left, right }
            | AlgebraExpr::Join { left, right, .. } => vec![left, right],
        }
    }

    /// Total number of operator nodes in the expression tree (excluding the literal
    /// and handle leaves).
    pub fn operator_count(&self) -> usize {
        let own = usize::from(!matches!(
            self,
            AlgebraExpr::Literal(_) | AlgebraExpr::Handle(_) | AlgebraExpr::ScanCsv(_)
        ));
        own + self
            .children()
            .iter()
            .map(|c| c.operator_count())
            .sum::<usize>()
    }

    /// Depth of the expression tree.
    pub fn depth(&self) -> usize {
        1 + self.children().iter().map(|c| c.depth()).max().unwrap_or(0)
    }

    /// Count how many TRANSPOSE nodes occur in the tree — the optimizer reports this
    /// before/after rewriting (transpose is the operator the paper singles out as most
    /// expensive to materialise).
    pub fn transpose_count(&self) -> usize {
        let own = usize::from(matches!(self, AlgebraExpr::Transpose { .. }));
        own + self
            .children()
            .iter()
            .map(|c| c.transpose_count())
            .sum::<usize>()
    }

    /// A stable, human-readable fingerprint of the operator tree, used as the key of
    /// the materialisation / reuse cache (§6.2.2). Literals are identified by pointer
    /// identity, so re-running the same statement on the same inputs hits the cache
    /// while running it on different inputs does not.
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        self.fingerprint_into(&mut out);
        out
    }

    fn fingerprint_into(&self, out: &mut String) {
        match self {
            AlgebraExpr::Literal(df) => {
                out.push_str(&format!("lit@{:p}", Arc::as_ptr(df)));
            }
            AlgebraExpr::Handle(handle) => {
                // Like literals, handles are identified by the shared result they
                // wrap: re-submitting a statement over the same handle hits the
                // cache; a statement over a fresh result does not.
                out.push_str(&format!("hnd@{:p}", handle.identity()));
            }
            AlgebraExpr::ScanCsv(scan) => {
                // Unlike literals/handles, scans are identified by *content* (the
                // session's file-state key plus the pushdowns): two statements over
                // the same on-disk file state share cache entries even though they
                // built separate leaf allocations.
                out.push_str(&scan.fingerprint_fragment());
            }
            AlgebraExpr::Selection { input, predicate } => {
                out.push_str(&format!("sel[{predicate:?}]("));
                input.fingerprint_into(out);
                out.push(')');
            }
            AlgebraExpr::Projection { input, columns } => {
                out.push_str(&format!("proj[{columns:?}]("));
                input.fingerprint_into(out);
                out.push(')');
            }
            AlgebraExpr::Union { left, right } => binary_fingerprint(out, "union", left, right),
            AlgebraExpr::Difference { left, right } => binary_fingerprint(out, "diff", left, right),
            AlgebraExpr::CrossProduct { left, right } => {
                binary_fingerprint(out, "cross", left, right)
            }
            AlgebraExpr::Join {
                left,
                right,
                on,
                how,
            } => {
                out.push_str(&format!("join[{on:?},{how:?}]("));
                left.fingerprint_into(out);
                out.push(',');
                right.fingerprint_into(out);
                out.push(')');
            }
            AlgebraExpr::DropDuplicates { input } => {
                out.push_str("dedup(");
                input.fingerprint_into(out);
                out.push(')');
            }
            AlgebraExpr::GroupBy {
                input,
                keys,
                aggs,
                keys_as_labels,
            } => {
                out.push_str(&format!("groupby[{keys:?};{aggs:?};{keys_as_labels}]("));
                input.fingerprint_into(out);
                out.push(')');
            }
            AlgebraExpr::Sort { input, spec } => {
                out.push_str(&format!("sort[{spec:?}]("));
                input.fingerprint_into(out);
                out.push(')');
            }
            AlgebraExpr::Rename { input, mapping } => {
                out.push_str(&format!("rename[{mapping:?}]("));
                input.fingerprint_into(out);
                out.push(')');
            }
            AlgebraExpr::Window {
                input,
                columns,
                func,
            } => {
                out.push_str(&format!("window[{columns:?};{func:?}]("));
                input.fingerprint_into(out);
                out.push(')');
            }
            AlgebraExpr::Transpose { input } => {
                out.push_str("transpose(");
                input.fingerprint_into(out);
                out.push(')');
            }
            AlgebraExpr::Map { input, func } => {
                out.push_str(&format!("map[{func:?}]("));
                input.fingerprint_into(out);
                out.push(')');
            }
            AlgebraExpr::ToLabels { input, column } => {
                out.push_str(&format!("tolabels[{column}]("));
                input.fingerprint_into(out);
                out.push(')');
            }
            AlgebraExpr::FromLabels { input, new_column } => {
                out.push_str(&format!("fromlabels[{new_column}]("));
                input.fingerprint_into(out);
                out.push(')');
            }
            AlgebraExpr::Limit { input, k, from_end } => {
                out.push_str(&format!("limit[{k},{from_end}]("));
                input.fingerprint_into(out);
                out.push(')');
            }
        }
    }

    // --- Builder helpers (fluent construction used by df-pandas and tests) ---

    /// SELECTION on this expression.
    pub fn select(self, predicate: Predicate) -> Self {
        AlgebraExpr::Selection {
            input: Box::new(self),
            predicate,
        }
    }

    /// PROJECTION on this expression.
    pub fn project(self, columns: ColumnSelector) -> Self {
        AlgebraExpr::Projection {
            input: Box::new(self),
            columns,
        }
    }

    /// UNION with another expression.
    pub fn union(self, right: AlgebraExpr) -> Self {
        AlgebraExpr::Union {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// DIFFERENCE with another expression.
    pub fn difference(self, right: AlgebraExpr) -> Self {
        AlgebraExpr::Difference {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// CROSS PRODUCT with another expression.
    pub fn cross(self, right: AlgebraExpr) -> Self {
        AlgebraExpr::CrossProduct {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// JOIN with another expression.
    pub fn join(self, right: AlgebraExpr, on: JoinOn, how: JoinType) -> Self {
        AlgebraExpr::Join {
            left: Box::new(self),
            right: Box::new(right),
            on,
            how,
        }
    }

    /// DROP DUPLICATES on this expression.
    pub fn drop_duplicates(self) -> Self {
        AlgebraExpr::DropDuplicates {
            input: Box::new(self),
        }
    }

    /// GROUPBY on this expression.
    pub fn group_by(self, keys: Vec<Cell>, aggs: Vec<Aggregation>, keys_as_labels: bool) -> Self {
        AlgebraExpr::GroupBy {
            input: Box::new(self),
            keys,
            aggs,
            keys_as_labels,
        }
    }

    /// SORT on this expression.
    pub fn sort(self, spec: SortSpec) -> Self {
        AlgebraExpr::Sort {
            input: Box::new(self),
            spec,
        }
    }

    /// RENAME on this expression.
    pub fn rename(self, mapping: Vec<(Cell, Cell)>) -> Self {
        AlgebraExpr::Rename {
            input: Box::new(self),
            mapping,
        }
    }

    /// WINDOW on this expression.
    pub fn window(self, columns: ColumnSelector, func: WindowFunc) -> Self {
        AlgebraExpr::Window {
            input: Box::new(self),
            columns,
            func,
        }
    }

    /// TRANSPOSE of this expression.
    pub fn transpose(self) -> Self {
        AlgebraExpr::Transpose {
            input: Box::new(self),
        }
    }

    /// MAP on this expression.
    pub fn map(self, func: MapFunc) -> Self {
        AlgebraExpr::Map {
            input: Box::new(self),
            func,
        }
    }

    /// TOLABELS on this expression.
    pub fn to_labels(self, column: impl Into<Cell>) -> Self {
        AlgebraExpr::ToLabels {
            input: Box::new(self),
            column: column.into(),
        }
    }

    /// FROMLABELS on this expression.
    pub fn from_labels(self, new_column: impl Into<Cell>) -> Self {
        AlgebraExpr::FromLabels {
            input: Box::new(self),
            new_column: new_column.into(),
        }
    }

    /// LIMIT (head/tail) on this expression.
    pub fn limit(self, k: usize, from_end: bool) -> Self {
        AlgebraExpr::Limit {
            input: Box::new(self),
            k,
            from_end,
        }
    }
}

fn binary_fingerprint(out: &mut String, name: &str, left: &AlgebraExpr, right: &AlgebraExpr) {
    out.push_str(name);
    out.push('(');
    left.fingerprint_into(out);
    out.push(',');
    right.fingerprint_into(out);
    out.push(')');
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::cell::cell;

    fn frame() -> DataFrame {
        DataFrame::from_rows(
            vec!["a", "b"],
            vec![vec![cell(1), cell("x")], vec![cell(2), cell("y")]],
        )
        .unwrap()
    }

    #[test]
    fn column_selector_resolution() {
        let df = frame();
        assert_eq!(ColumnSelector::All.resolve(&df).unwrap(), vec![0, 1]);
        assert_eq!(
            ColumnSelector::ByLabels(vec![cell("b")])
                .resolve(&df)
                .unwrap(),
            vec![1]
        );
        assert_eq!(
            ColumnSelector::ByPositions(vec![1, 0])
                .resolve(&df)
                .unwrap(),
            vec![1, 0]
        );
        assert_eq!(ColumnSelector::Numeric.resolve(&df).unwrap(), vec![0]);
        assert_eq!(
            ColumnSelector::Excluding(vec![cell("a")])
                .resolve(&df)
                .unwrap(),
            vec![1]
        );
        assert!(ColumnSelector::ByLabels(vec![cell("z")])
            .resolve(&df)
            .is_err());
        assert!(ColumnSelector::ByPositions(vec![9]).resolve(&df).is_err());
    }

    #[test]
    fn cmp_op_semantics_and_null_handling() {
        assert!(CmpOp::Eq.eval(&cell(2), &cell(2.0)));
        assert!(CmpOp::Lt.eval(&cell(1), &cell(2)));
        assert!(CmpOp::Ge.eval(&cell("b"), &cell("a")));
        assert!(!CmpOp::Eq.eval(&Cell::Null, &Cell::Null));
        assert!(!CmpOp::Gt.eval(&cell(1), &Cell::Null));
    }

    #[test]
    fn predicate_matching_and_position_only_detection() {
        let df = frame();
        let row = RowView {
            col_labels: df.col_labels().as_slice(),
            row_label: &cell(0),
            cells: &[cell(1), cell("x")],
        };
        let pred = Predicate::ColCmp {
            column: cell("a"),
            op: CmpOp::Gt,
            value: cell(0),
        };
        assert!(pred.matches(0, row));
        assert!(!pred.is_position_only());
        let positional = Predicate::And(
            Box::new(Predicate::PositionRange { start: 0, end: 5 }),
            Box::new(Predicate::True),
        );
        assert!(positional.is_position_only());
        assert!(positional.matches(3, row));
        let negated = Predicate::Not(Box::new(Predicate::IsNull { column: cell("a") }));
        assert!(negated.matches(0, row));
        let custom = Predicate::Custom {
            name: "has_x".into(),
            func: Arc::new(|r: RowView<'_>| {
                r.get(&cell("b")).map(|c| c == &cell("x")).unwrap_or(false)
            }),
        };
        assert!(custom.matches(0, row));
        assert!(format!("{custom:?}").contains("has_x"));
    }

    #[test]
    fn map_func_static_domains_and_arity() {
        assert_eq!(
            MapFunc::IsNullMask.static_output_domain(),
            Some(Domain::Bool)
        );
        assert_eq!(MapFunc::StrUpper.static_output_domain(), None);
        assert!(MapFunc::FillNull(Cell::Null).preserves_arity());
        assert!(!MapFunc::OneHot {
            column: cell("a"),
            categories: vec![cell("x")]
        }
        .preserves_arity());
    }

    #[test]
    fn aggregation_output_labels() {
        assert_eq!(
            Aggregation::of("fare", AggFunc::Sum).output_label(),
            cell("fare")
        );
        assert_eq!(
            Aggregation::of("fare", AggFunc::Sum)
                .with_alias("total")
                .output_label(),
            cell("total")
        );
        assert_eq!(Aggregation::count_rows().output_label(), cell("count"));
    }

    #[test]
    fn sort_spec_recycles_ascending() {
        let spec = SortSpec {
            by: vec![cell("a"), cell("b")],
            ascending: vec![false],
            stable: true,
        };
        assert!(!spec.is_ascending(0));
        assert!(!spec.is_ascending(1));
        assert!(SortSpec::ascending(vec![cell("a")]).is_ascending(0));
    }

    #[test]
    fn expr_builders_and_introspection() {
        let base = AlgebraExpr::literal(frame());
        let expr = base
            .clone()
            .select(Predicate::True)
            .project(ColumnSelector::All)
            .transpose()
            .map(MapFunc::IsNullMask)
            .limit(5, false);
        assert_eq!(expr.operator_count(), 5);
        assert_eq!(expr.depth(), 6);
        assert_eq!(expr.transpose_count(), 1);
        assert_eq!(expr.name(), "LIMIT");
        let join = base
            .clone()
            .join(base.clone(), JoinOn::RowLabels, JoinType::Inner);
        assert_eq!(join.children().len(), 2);
        assert_eq!(join.name(), "JOIN");
    }

    #[test]
    fn handle_leaves_behave_like_literals_in_plans() {
        let handle = FrameHandle::from_dataframe(frame());
        let expr = AlgebraExpr::handle(handle.clone()).select(Predicate::True);
        assert_eq!(expr.name(), "SELECTION");
        assert_eq!(expr.operator_count(), 1);
        assert_eq!(expr.children()[0].name(), "HANDLE");
        // Same handle → same fingerprint; a fresh result → a different one.
        let again = AlgebraExpr::handle(handle.clone()).select(Predicate::True);
        assert_eq!(expr.fingerprint(), again.fingerprint());
        let fresh =
            AlgebraExpr::handle(FrameHandle::from_dataframe(frame())).select(Predicate::True);
        assert_ne!(expr.fingerprint(), fresh.fingerprint());
        // leaf_pins returns exactly the fingerprinted leaf allocations.
        let pins = expr.leaf_pins();
        assert_eq!(pins.len(), 1);
        assert_eq!(pins[0].identity(), handle.identity());
        let joined = AlgebraExpr::literal(frame()).union(AlgebraExpr::handle(handle));
        assert_eq!(joined.leaf_pins().len(), 2);
    }

    #[test]
    fn fingerprints_distinguish_plans_and_literals() {
        let df = Arc::new(frame());
        let a = AlgebraExpr::literal_arc(Arc::clone(&df)).select(Predicate::True);
        let b = AlgebraExpr::literal_arc(Arc::clone(&df)).select(Predicate::True);
        let c = AlgebraExpr::literal_arc(df).transpose();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        let other = AlgebraExpr::literal(frame()).select(Predicate::True);
        assert_ne!(a.fingerprint(), other.fingerprint());
    }
}
