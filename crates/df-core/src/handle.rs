//! Opaque result handles: the values that cross the narrow waist.
//!
//! Paper §3.3 / §6.1: the query-processing API between the user-facing layers and the
//! execution backends should not force every statement's output through a fully
//! assembled, fully resident dataframe — a statement the user never inspects only
//! needs an engine-owned *handle* to its (possibly partitioned, possibly spilled)
//! result, and the next statement's plan can consume that handle directly.
//!
//! [`FrameHandle`] is that value. It is either
//!
//! * **materialised** — a plain shared [`DataFrame`] (what the baseline and reference
//!   engines produce), or
//! * **partitioned** — an engine-owned [`PartitionedResult`]: an opaque, cheaply
//!   clonable representation (the scalable engine's partition grid, resident *or*
//!   spilled) that only turns into a [`DataFrame`] at an explicit materialisation
//!   point ([`Engine::collect`](crate::engine::Engine::collect), `head`, `tail`,
//!   or a write).
//!
//! Handles flow back into plans through the [`AlgebraExpr::Handle`] leaf
//! (`crate::algebra`): an engine that recognises its own handle type (via
//! [`PartitionedResult::as_any`]) resumes from the partitioned representation without
//! re-assembly or re-partitioning; any other engine falls back to
//! [`PartitionedResult::assemble`].
//!
//! [`AlgebraExpr::Handle`]: crate::algebra::AlgebraExpr::Handle

use std::any::Any;
use std::fmt;
use std::sync::Arc;

use df_types::cell::Cell;
use df_types::domain::Domain;
use df_types::error::DfResult;

use crate::dataframe::DataFrame;

/// A per-column schema: each column label paired with its domain where known
/// (`None` = still raw `Σ*` data whose domain has not been resolved).
pub type FrameSchema = Vec<(Cell, Option<Domain>)>;

/// An engine-owned partitioned (or otherwise deferred) query result.
///
/// Implementations live in the engine crates; df-core only needs enough surface to
/// report metadata, materialise on demand, and let the owning engine recover its
/// concrete representation through [`PartitionedResult::as_any`].
pub trait PartitionedResult: fmt::Debug + Send + Sync {
    /// Logical `(rows, columns)` of the result, from metadata only — implementations
    /// must not load spilled data to answer this.
    fn shape(&self) -> (usize, usize);

    /// Column labels paired with their known domains, from metadata only — the dtype
    /// counterpart of [`PartitionedResult::shape`], with the same contract: no
    /// spilled data may be loaded. Return `None` when the metadata cannot answer
    /// (e.g. a deferred transpose hides the logical columns); callers then fall back
    /// to assembling. The default is `None` so existing implementations stay valid.
    fn schema(&self) -> Option<FrameSchema> {
        None
    }

    /// Assemble the full logical dataframe (the generic materialisation path used by
    /// engines that do not recognise this handle type).
    fn assemble(&self) -> DfResult<DataFrame>;

    /// First `k` logical rows. The default assembles and slices; partition-aware
    /// implementations override this to touch only the leading partitions (§6.1.2).
    fn prefix(&self, k: usize) -> DfResult<DataFrame> {
        Ok(self.assemble()?.head(k))
    }

    /// Last `k` logical rows (the suffix mirror of [`PartitionedResult::prefix`]).
    fn suffix(&self, k: usize) -> DfResult<DataFrame> {
        Ok(self.assemble()?.tail(k))
    }

    /// Approximate in-memory footprint of the result in bytes, from metadata only —
    /// like [`PartitionedResult::shape`], implementations must not load spilled data
    /// to answer. Used by budget-accounted caches to cost entries. Return `None`
    /// when the metadata cannot answer (the default, so existing implementations
    /// stay valid); callers then fall back to a shape-based estimate.
    fn approx_size_bytes(&self) -> Option<usize> {
        None
    }

    /// Downcasting hook: the owning engine recovers its concrete grid type from an
    /// [`AlgebraExpr::Handle`](crate::algebra::AlgebraExpr::Handle) leaf through this.
    fn as_any(&self) -> &dyn Any;
}

/// An opaque handle to one statement's result, produced by
/// [`Engine::execute`](crate::engine::Engine::execute) and consumed either by a later
/// plan (as an [`AlgebraExpr::Handle`](crate::algebra::AlgebraExpr::Handle) leaf) or
/// by an explicit materialisation point.
///
/// Handles are cheap to clone: both arms are reference-counted, so caching a handle
/// or feeding it to several downstream statements shares one underlying result.
///
/// ```
/// use df_core::dataframe::DataFrame;
/// use df_core::handle::FrameHandle;
/// use df_types::cell::cell;
///
/// let df = DataFrame::from_columns(vec!["v"], vec![vec![cell(1), cell(2), cell(3)]])?;
/// let handle = FrameHandle::from_dataframe(df);
/// assert_eq!(handle.shape(), (3, 1)); // metadata only — nothing is assembled
/// assert_eq!(handle.head(2)?.n_rows(), 2); // partition-aware prefix inspection
/// let materialised = handle.into_dataframe()?; // the explicit materialisation point
/// assert_eq!(materialised.cell(2, 0)?, &cell(3));
/// # Ok::<(), df_types::error::DfError>(())
/// ```
#[derive(Debug, Clone)]
pub enum FrameHandle {
    /// A fully materialised in-memory result.
    Materialized(Arc<DataFrame>),
    /// An engine-owned partitioned result (resident or spilled).
    Partitioned(Arc<dyn PartitionedResult>),
}

impl FrameHandle {
    /// Wrap a materialised dataframe.
    pub fn from_dataframe(df: DataFrame) -> FrameHandle {
        FrameHandle::Materialized(Arc::new(df))
    }

    /// Wrap an already-shared materialised dataframe.
    pub fn from_shared(df: Arc<DataFrame>) -> FrameHandle {
        FrameHandle::Materialized(df)
    }

    /// Wrap an engine-owned partitioned result.
    pub fn from_partitioned(result: Arc<dyn PartitionedResult>) -> FrameHandle {
        FrameHandle::Partitioned(result)
    }

    /// True when the handle holds an engine-owned partitioned result rather than a
    /// plain dataframe.
    pub fn is_partitioned(&self) -> bool {
        matches!(self, FrameHandle::Partitioned(_))
    }

    /// Logical `(rows, columns)`, from metadata only.
    pub fn shape(&self) -> (usize, usize) {
        match self {
            FrameHandle::Materialized(df) => df.shape(),
            FrameHandle::Partitioned(p) => p.shape(),
        }
    }

    /// Column labels paired with their known domains (`None` per slot for a column
    /// whose schema induction is still deferred), answered from metadata only — a
    /// partitioned, even fully spilled result reports its schema without loading or
    /// assembling anything, exactly like [`FrameHandle::shape`]. Returns `None` when
    /// the result's metadata cannot answer (a deferred transpose, or a foreign
    /// [`PartitionedResult`] without schema support); callers that need the schema
    /// unconditionally should then assemble.
    ///
    /// ```
    /// use df_core::dataframe::DataFrame;
    /// use df_core::handle::FrameHandle;
    /// use df_types::cell::cell;
    /// use df_types::domain::Domain;
    ///
    /// let mut df = DataFrame::from_columns(vec!["v"], vec![vec![cell(1), cell(2)]])?;
    /// df.columns_mut()[0].declare_domain(Domain::Int);
    /// let handle = FrameHandle::from_dataframe(df);
    /// let schema = handle.schema().expect("materialised handles always answer");
    /// assert_eq!(schema, vec![(cell("v"), Some(Domain::Int))]);
    /// # Ok::<(), df_types::error::DfError>(())
    /// ```
    pub fn schema(&self) -> Option<FrameSchema> {
        match self {
            FrameHandle::Materialized(df) => Some(
                df.col_labels()
                    .as_slice()
                    .iter()
                    .cloned()
                    .zip(df.schema())
                    .collect(),
            ),
            FrameHandle::Partitioned(p) => p.schema(),
        }
    }

    /// Materialise a copy of the full result, leaving the handle usable.
    pub fn to_dataframe(&self) -> DfResult<DataFrame> {
        match self {
            FrameHandle::Materialized(df) => Ok(df.as_ref().clone()),
            FrameHandle::Partitioned(p) => p.assemble(),
        }
    }

    /// Materialise the full result, consuming the handle: a uniquely held
    /// materialised frame moves out copy-free.
    pub fn into_dataframe(self) -> DfResult<DataFrame> {
        match self {
            FrameHandle::Materialized(df) => {
                Ok(Arc::try_unwrap(df).unwrap_or_else(|shared| shared.as_ref().clone()))
            }
            FrameHandle::Partitioned(p) => p.assemble(),
        }
    }

    /// First `k` rows, using the partition-aware prefix path when available.
    pub fn head(&self, k: usize) -> DfResult<DataFrame> {
        match self {
            FrameHandle::Materialized(df) => Ok(df.head(k)),
            FrameHandle::Partitioned(p) => p.prefix(k),
        }
    }

    /// Last `k` rows, using the partition-aware suffix path when available.
    pub fn tail(&self, k: usize) -> DfResult<DataFrame> {
        match self {
            FrameHandle::Materialized(df) => Ok(df.tail(k)),
            FrameHandle::Partitioned(p) => p.suffix(k),
        }
    }

    /// Approximate in-memory footprint in bytes, from metadata only. Materialised
    /// handles answer exactly; partitioned results answer through
    /// [`PartitionedResult::approx_size_bytes`], falling back to a conservative
    /// shape-based estimate (16 bytes per cell plus a fixed overhead) when the
    /// result's metadata cannot. Budget-accounted caches use this to cost entries,
    /// so the contract matters: answering never loads spilled data.
    pub fn approx_size_bytes(&self) -> usize {
        match self {
            FrameHandle::Materialized(df) => df.approx_size_bytes(),
            FrameHandle::Partitioned(p) => p.approx_size_bytes().unwrap_or_else(|| {
                let (rows, cols) = p.shape();
                rows.saturating_mul(cols).saturating_mul(16) + 64
            }),
        }
    }

    /// A stable identity pointer for plan fingerprints: two handles share an identity
    /// exactly when they share the underlying result, so re-running a statement on the
    /// same handle hits the materialisation cache while a fresh result does not.
    pub fn identity(&self) -> *const () {
        match self {
            FrameHandle::Materialized(df) => Arc::as_ptr(df) as *const (),
            FrameHandle::Partitioned(p) => Arc::as_ptr(p) as *const (),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::cell::cell;

    fn frame() -> DataFrame {
        DataFrame::from_rows(
            vec!["a", "b"],
            vec![
                vec![cell(1), cell("x")],
                vec![cell(2), cell("y")],
                vec![cell(3), cell("z")],
            ],
        )
        .unwrap()
    }

    #[derive(Debug)]
    struct TestResult(DataFrame);

    impl PartitionedResult for TestResult {
        fn shape(&self) -> (usize, usize) {
            self.0.shape()
        }
        fn assemble(&self) -> DfResult<DataFrame> {
            Ok(self.0.clone())
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn materialized_handles_report_and_materialise() {
        let handle = FrameHandle::from_dataframe(frame());
        assert!(!handle.is_partitioned());
        assert_eq!(handle.shape(), (3, 2));
        assert_eq!(handle.head(2).unwrap().n_rows(), 2);
        assert_eq!(handle.tail(1).unwrap().cell(0, 0).unwrap(), &cell(3));
        let copy = handle.to_dataframe().unwrap();
        assert!(copy.same_data(&frame()));
        // A uniquely held handle moves its frame out without copying.
        assert!(handle.into_dataframe().unwrap().same_data(&frame()));
    }

    #[test]
    fn partitioned_handles_use_the_trait_surface() {
        let handle = FrameHandle::from_partitioned(Arc::new(TestResult(frame())));
        assert!(handle.is_partitioned());
        assert_eq!(handle.shape(), (3, 2));
        assert!(handle.to_dataframe().unwrap().same_data(&frame()));
        assert_eq!(handle.head(1).unwrap().n_rows(), 1);
        assert_eq!(handle.tail(2).unwrap().n_rows(), 2);
        // Downcast recovers the concrete type.
        let FrameHandle::Partitioned(p) = &handle else {
            unreachable!()
        };
        assert!(p.as_any().downcast_ref::<TestResult>().is_some());
    }

    #[test]
    fn size_accounting_answers_from_metadata() {
        let handle = FrameHandle::from_dataframe(frame());
        assert_eq!(handle.approx_size_bytes(), frame().approx_size_bytes());
        // A foreign partitioned result without size metadata falls back to the
        // shape-based estimate instead of assembling.
        let partitioned = FrameHandle::from_partitioned(Arc::new(TestResult(frame())));
        assert_eq!(partitioned.approx_size_bytes(), 3 * 2 * 16 + 64);
    }

    #[test]
    fn identity_tracks_the_shared_result() {
        let handle = FrameHandle::from_dataframe(frame());
        let clone = handle.clone();
        assert_eq!(handle.identity(), clone.identity());
        let other = FrameHandle::from_dataframe(frame());
        assert_ne!(handle.identity(), other.identity());
    }
}
