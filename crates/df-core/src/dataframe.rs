//! The dataframe data model of paper §4.2.
//!
//! A dataframe is the tuple `(A_mn, R_m, C_n, D_n)`: an `m × n` array of entries, a
//! vector of `m` row labels, a vector of `n` column labels, and a vector of `n` domains
//! ("the schema"), any entry of which may be left unspecified and induced later by the
//! schema induction function `S`.
//!
//! The concrete representation here is columnar: a [`DataFrame`] owns one [`Column`]
//! per column label, each holding its cells plus a [`SchemaSlot`] implementing the lazy
//! schema. Rows are reconstructed on demand. This is only the *reference*
//! representation — the baseline engine deliberately converts to a row-major layout and
//! the scalable engine partitions frames into blocks — but all engines produce plain
//! `DataFrame` values as results so they can be compared cell-for-cell.

use std::fmt;

use df_types::cell::Cell;
use df_types::domain::Domain;
use df_types::error::{DfError, DfResult};
use df_types::infer::{induce_domain, induce_from_strings, SchemaSlot};
use df_types::labels::Labels;

/// One column of a dataframe: its cells plus the (possibly lazy) domain slot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Column {
    cells: Vec<Cell>,
    schema: SchemaSlot,
}

impl Column {
    /// A column from typed cells with an unknown (to-be-induced) domain.
    pub fn new(cells: Vec<Cell>) -> Self {
        Column {
            cells,
            schema: SchemaSlot::unknown(),
        }
    }

    /// A column from typed cells with a declared domain.
    pub fn with_domain(cells: Vec<Cell>, domain: Domain) -> Self {
        Column {
            cells,
            schema: SchemaSlot::declared(domain),
        }
    }

    /// A column ingested from raw strings (the `Σ*` state of `A_mn`): every non-null
    /// entry is kept as [`Cell::Str`] and the domain is left unspecified.
    pub fn from_raw_strings(values: impl IntoIterator<Item = String>) -> Self {
        let cells = values
            .into_iter()
            .map(|s| {
                if df_types::domain::is_null_token(&s) {
                    Cell::Null
                } else {
                    Cell::Str(s)
                }
            })
            .collect();
        Column::new(cells)
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Borrow the cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Mutably borrow the cells (the schema cache is invalidated).
    pub fn cells_mut(&mut self) -> &mut Vec<Cell> {
        self.schema.invalidate();
        &mut self.cells
    }

    /// Consume the column, returning its cells.
    pub fn into_cells(self) -> Vec<Cell> {
        self.cells
    }

    /// The cell at `index`, if in bounds.
    pub fn get(&self, index: usize) -> Option<&Cell> {
        self.cells.get(index)
    }

    /// Replace the cell at `index`, invalidating any induced domain.
    pub fn set(&mut self, index: usize, value: Cell) -> DfResult<()> {
        let len = self.cells.len();
        match self.cells.get_mut(index) {
            Some(slot) => {
                *slot = value;
                self.schema.invalidate();
                Ok(())
            }
            None => Err(DfError::IndexOutOfBounds {
                axis: "row",
                index,
                len,
            }),
        }
    }

    /// The domain if already known (declared or cached), without inducing.
    pub fn known_domain(&self) -> Option<Domain> {
        self.schema.known()
    }

    /// Resolve the domain, running the schema induction function `S` if needed and
    /// caching the result.
    pub fn resolve_domain(&mut self) -> Domain {
        let cells = &self.cells;
        self.schema.resolve_with(|| {
            // Raw (string) columns are induced through the string-based S so numeric
            // text such as "42" is recognised; typed columns widen their natural
            // domains.
            if cells.iter().any(|c| matches!(c, Cell::Str(_)))
                && cells.iter().all(|c| matches!(c, Cell::Str(_) | Cell::Null))
            {
                induce_from_strings(cells.iter().filter_map(|c| c.as_str()))
            } else {
                induce_domain(cells.iter())
            }
        })
    }

    /// Induce the domain without mutating the slot (used by read-only views).
    pub fn peek_domain(&self) -> Domain {
        if let Some(domain) = self.schema.known() {
            return domain;
        }
        if self
            .cells
            .iter()
            .all(|c| matches!(c, Cell::Str(_) | Cell::Null))
            && self.cells.iter().any(|c| matches!(c, Cell::Str(_)))
        {
            induce_from_strings(self.cells.iter().filter_map(|c| c.as_str()))
        } else {
            induce_domain(self.cells.iter())
        }
    }

    /// Declare the column's domain explicitly (no induction will run).
    pub fn declare_domain(&mut self, domain: Domain) {
        self.schema.declare(domain);
    }

    /// Cache an externally computed induction result (see
    /// [`SchemaSlot::note_induced`]): unlike [`Column::declare_domain`], the cached
    /// domain is forgotten again if the cells are later mutated.
    pub fn note_induced_domain(&mut self, domain: Domain) {
        self.schema.note_induced(domain);
    }

    /// Parse every raw string cell with the column's (resolved) domain's parsing
    /// function `p_i`, converting the column from the `Σ*` state to typed cells.
    /// Unparseable entries become null rather than failing, matching pandas' lenient
    /// `to_numeric(errors="coerce")` behaviour used during exploration.
    pub fn parse_in_place(&mut self) -> Domain {
        let domain = self.resolve_domain();
        if matches!(domain, Domain::Str | Domain::Composite) {
            return domain;
        }
        for cell in &mut self.cells {
            if let Cell::Str(s) = cell {
                *cell = domain.parse(s).unwrap_or(Cell::Null);
            }
        }
        self.schema.declare(domain);
        domain
    }

    /// Number of non-null cells.
    pub fn count_non_null(&self) -> usize {
        self.cells.iter().filter(|c| !c.is_null()).count()
    }

    /// Approximate memory footprint in bytes.
    pub fn approx_size_bytes(&self) -> usize {
        self.cells.iter().map(Cell::approx_size_bytes).sum()
    }
}

/// A dataframe: the paper's `(A_mn, R_m, C_n, D_n)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataFrame {
    columns: Vec<Column>,
    row_labels: Labels,
    col_labels: Labels,
}

impl DataFrame {
    /// The empty dataframe (0 × 0).
    pub fn empty() -> Self {
        DataFrame::default()
    }

    /// Build a dataframe from column labels and per-column cell vectors. Row labels
    /// default to positional ranks.
    pub fn from_columns(col_labels: impl Into<Labels>, columns: Vec<Vec<Cell>>) -> DfResult<Self> {
        let col_labels = col_labels.into();
        if col_labels.len() != columns.len() {
            return Err(DfError::shape(
                format!("{} column labels", columns.len()),
                format!("{} labels", col_labels.len()),
            ));
        }
        let n_rows = columns.first().map(Vec::len).unwrap_or(0);
        if let Some(bad) = columns.iter().find(|c| c.len() != n_rows) {
            return Err(DfError::shape(
                format!("columns of length {n_rows}"),
                format!("a column of length {}", bad.len()),
            ));
        }
        Ok(DataFrame {
            columns: columns.into_iter().map(Column::new).collect(),
            row_labels: Labels::positional(n_rows),
            col_labels,
        })
    }

    /// Build a dataframe from column labels and row-major data. Row labels default to
    /// positional ranks.
    pub fn from_rows(col_labels: impl Into<Labels>, rows: Vec<Vec<Cell>>) -> DfResult<Self> {
        let col_labels = col_labels.into();
        let n_cols = col_labels.len();
        if let Some(bad) = rows.iter().find(|r| r.len() != n_cols) {
            return Err(DfError::shape(
                format!("rows of width {n_cols}"),
                format!("a row of width {}", bad.len()),
            ));
        }
        let n_rows = rows.len();
        let mut columns: Vec<Vec<Cell>> = vec![Vec::with_capacity(n_rows); n_cols];
        for row in rows {
            for (j, cell) in row.into_iter().enumerate() {
                columns[j].push(cell);
            }
        }
        Ok(DataFrame {
            columns: columns.into_iter().map(Column::new).collect(),
            row_labels: Labels::positional(n_rows),
            col_labels,
        })
    }

    /// Build a dataframe from pre-constructed [`Column`]s (preserving their schema
    /// slots) plus explicit labels for both axes.
    pub fn from_parts(
        columns: Vec<Column>,
        row_labels: Labels,
        col_labels: Labels,
    ) -> DfResult<Self> {
        if col_labels.len() != columns.len() {
            return Err(DfError::shape(
                format!("{} column labels", columns.len()),
                format!("{} labels", col_labels.len()),
            ));
        }
        let n_rows = row_labels.len();
        if let Some(bad) = columns.iter().find(|c| c.len() != n_rows) {
            return Err(DfError::shape(
                format!("columns of length {n_rows}"),
                format!("a column of length {}", bad.len()),
            ));
        }
        Ok(DataFrame {
            columns,
            row_labels,
            col_labels,
        })
    }

    /// Consume the dataframe, returning its columns and both label vectors. The
    /// multi-way concatenation helpers use this to move cell buffers instead of
    /// cloning them.
    pub fn into_parts(self) -> (Vec<Column>, Labels, Labels) {
        (self.columns, self.row_labels, self.col_labels)
    }

    /// Replace the row labels (must match the row count).
    pub fn with_row_labels(mut self, labels: impl Into<Labels>) -> DfResult<Self> {
        let labels = labels.into();
        if labels.len() != self.n_rows() {
            return Err(DfError::shape(
                format!("{} row labels", self.n_rows()),
                format!("{} labels", labels.len()),
            ));
        }
        self.row_labels = labels;
        Ok(self)
    }

    /// Number of rows (`m`).
    pub fn n_rows(&self) -> usize {
        self.row_labels.len()
    }

    /// Number of columns (`n`).
    pub fn n_cols(&self) -> usize {
        self.col_labels.len()
    }

    /// `(rows, columns)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.n_rows(), self.n_cols())
    }

    /// Total number of cells (`m · n`), used for memory caps and benchmarks.
    pub fn n_cells(&self) -> usize {
        self.n_rows() * self.n_cols()
    }

    /// The row labels `R_m`.
    pub fn row_labels(&self) -> &Labels {
        &self.row_labels
    }

    /// The column labels `C_n`.
    pub fn col_labels(&self) -> &Labels {
        &self.col_labels
    }

    /// Borrow all columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Mutably borrow all columns.
    pub fn columns_mut(&mut self) -> &mut [Column] {
        &mut self.columns
    }

    /// The column at position `j`.
    pub fn column(&self, j: usize) -> DfResult<&Column> {
        self.columns.get(j).ok_or(DfError::IndexOutOfBounds {
            axis: "column",
            index: j,
            len: self.columns.len(),
        })
    }

    /// The position of the column with the given label (first match).
    pub fn col_position(&self, label: &Cell) -> DfResult<usize> {
        self.col_labels.position_of(label, "column")
    }

    /// The column with the given label (first match).
    pub fn column_by_label(&self, label: &Cell) -> DfResult<&Column> {
        let j = self.col_position(label)?;
        self.column(j)
    }

    /// The position of the row with the given label (first match).
    pub fn row_position(&self, label: &Cell) -> DfResult<usize> {
        self.row_labels.position_of(label, "row")
    }

    /// The cell at `(row i, column j)` — positional notation (`iloc`).
    pub fn cell(&self, i: usize, j: usize) -> DfResult<&Cell> {
        let column = self.column(j)?;
        column.get(i).ok_or(DfError::IndexOutOfBounds {
            axis: "row",
            index: i,
            len: column.len(),
        })
    }

    /// Overwrite the cell at `(row i, column j)` — the paper's "ordered point update"
    /// (workflow step C1).
    pub fn set_cell(&mut self, i: usize, j: usize, value: Cell) -> DfResult<()> {
        let len = self.columns.len();
        let column = self.columns.get_mut(j).ok_or(DfError::IndexOutOfBounds {
            axis: "column",
            index: j,
            len,
        })?;
        column.set(i, value)
    }

    /// Materialise row `i` as an owned vector of cells.
    pub fn row(&self, i: usize) -> DfResult<Vec<Cell>> {
        if i >= self.n_rows() {
            return Err(DfError::IndexOutOfBounds {
                axis: "row",
                index: i,
                len: self.n_rows(),
            });
        }
        Ok(self.columns.iter().map(|c| c.cells()[i].clone()).collect())
    }

    /// Iterate rows as owned vectors (reference-executor convenience; engines avoid
    /// this when they can stay columnar).
    pub fn iter_rows(&self) -> impl Iterator<Item = Vec<Cell>> + '_ {
        (0..self.n_rows()).map(move |i| self.columns.iter().map(|c| c.cells()[i].clone()).collect())
    }

    /// The current schema `D_n`, with `None` for entries not yet declared or induced.
    pub fn schema(&self) -> Vec<Option<Domain>> {
        self.columns.iter().map(Column::known_domain).collect()
    }

    /// Resolve (inducing and caching where necessary) the schema of every column.
    pub fn resolve_schema(&mut self) -> Vec<Domain> {
        self.columns
            .iter_mut()
            .map(Column::resolve_domain)
            .collect()
    }

    /// Resolve the schema and parse all raw string cells into their domains.
    pub fn parse_all(&mut self) -> Vec<Domain> {
        self.columns
            .iter_mut()
            .map(Column::parse_in_place)
            .collect()
    }

    /// Declare the full schema a priori (relational style). Lengths must match.
    pub fn declare_schema(&mut self, domains: &[Domain]) -> DfResult<()> {
        if domains.len() != self.n_cols() {
            return Err(DfError::shape(
                format!("{} domains", self.n_cols()),
                format!("{} domains", domains.len()),
            ));
        }
        for (column, domain) in self.columns.iter_mut().zip(domains) {
            column.declare_domain(*domain);
        }
        Ok(())
    }

    /// True when every column has the same (known or peeked) domain — the paper's
    /// *homogeneous dataframe*.
    pub fn is_homogeneous(&self) -> bool {
        let mut domains = self.columns.iter().map(Column::peek_domain);
        match domains.next() {
            None => true,
            Some(first) => domains.all(|d| d == first),
        }
    }

    /// True when the dataframe is homogeneous over a numeric domain — the paper's
    /// *matrix dataframe*, eligible for linear-algebra operators such as covariance.
    pub fn is_matrix(&self) -> bool {
        !self.columns.is_empty()
            && self.is_homogeneous()
            && self.columns[0].peek_domain().is_numeric()
    }

    /// First `k` rows, preserving labels and schema slots (the `head` inspection the
    /// paper's §6.1.2 prefix-execution discussion revolves around).
    pub fn head(&self, k: usize) -> DataFrame {
        self.slice_rows(0, k.min(self.n_rows()))
    }

    /// Last `k` rows, preserving order.
    pub fn tail(&self, k: usize) -> DataFrame {
        let n = self.n_rows();
        let start = n.saturating_sub(k);
        self.slice_rows(start, n)
    }

    /// Rows `start..end` (clamped), preserving labels and schema slots.
    pub fn slice_rows(&self, start: usize, end: usize) -> DataFrame {
        let end = end.min(self.n_rows());
        let start = start.min(end);
        let columns = self
            .columns
            .iter()
            .map(|c| {
                let mut col = Column::new(c.cells()[start..end].to_vec());
                if let Some(domain) = c.known_domain() {
                    col.declare_domain(domain);
                }
                col
            })
            .collect();
        let row_labels = Labels::new(self.row_labels.as_slice()[start..end].to_vec());
        DataFrame {
            columns,
            row_labels,
            col_labels: self.col_labels.clone(),
        }
    }

    /// Select rows by position (used by SELECTION and SORT), preserving schema slots.
    pub fn take_rows(&self, positions: &[usize]) -> DfResult<DataFrame> {
        for &p in positions {
            if p >= self.n_rows() {
                return Err(DfError::IndexOutOfBounds {
                    axis: "row",
                    index: p,
                    len: self.n_rows(),
                });
            }
        }
        let columns = self
            .columns
            .iter()
            .map(|c| {
                let cells = positions.iter().map(|&p| c.cells()[p].clone()).collect();
                let mut col = Column::new(cells);
                if let Some(domain) = c.known_domain() {
                    col.declare_domain(domain);
                }
                col
            })
            .collect();
        Ok(DataFrame {
            columns,
            row_labels: self.row_labels.select(positions)?,
            col_labels: self.col_labels.clone(),
        })
    }

    /// Select columns by position (used by PROJECTION), preserving schema slots.
    pub fn take_columns(&self, positions: &[usize]) -> DfResult<DataFrame> {
        let mut columns = Vec::with_capacity(positions.len());
        for &p in positions {
            columns.push(
                self.columns
                    .get(p)
                    .cloned()
                    .ok_or(DfError::IndexOutOfBounds {
                        axis: "column",
                        index: p,
                        len: self.columns.len(),
                    })?,
            );
        }
        Ok(DataFrame {
            columns,
            row_labels: self.row_labels.clone(),
            col_labels: self.col_labels.select(positions)?,
        })
    }

    /// Append a column at the end of the frame.
    pub fn push_column(&mut self, label: Cell, column: Column) -> DfResult<()> {
        if column.len() != self.n_rows() && self.n_cols() != 0 {
            return Err(DfError::shape(
                format!("a column of length {}", self.n_rows()),
                format!("length {}", column.len()),
            ));
        }
        if self.n_cols() == 0 {
            self.row_labels = Labels::positional(column.len());
        }
        self.col_labels.push(label);
        self.columns.push(column);
        Ok(())
    }

    /// Approximate memory footprint of the frame in bytes: the data array plus both
    /// label vectors. This drives the storage layer's spill budget, so it must track
    /// real sizes — a frame with heavyweight string labels costs what it costs.
    pub fn approx_size_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(Column::approx_size_bytes)
            .sum::<usize>()
            + self.row_labels.approx_size_bytes()
            + self.col_labels.approx_size_bytes()
    }

    /// Positional ranks of all rows — exposed because several operators (FROMLABELS,
    /// opportunistic prefix execution) need "the default labels" of a frame this size.
    pub fn positional_labels(&self) -> Labels {
        Labels::positional(self.n_rows())
    }

    /// Cell-for-cell equality that also compares labels but ignores schema slots.
    /// Engines may differ in how much schema they have induced; results should still
    /// count as equal if the visible data agrees.
    pub fn same_data(&self, other: &DataFrame) -> bool {
        if self.shape() != other.shape() {
            return false;
        }
        if self.row_labels != other.row_labels || self.col_labels != other.col_labels {
            return false;
        }
        self.columns
            .iter()
            .zip(other.columns.iter())
            .all(|(a, b)| a.cells() == b.cells())
    }

    /// Like [`DataFrame::same_data`], but float cells are compared with a relative
    /// tolerance. Distributed engines may sum partitions in a different order than a
    /// single-pass executor, so differential tests compare aggregated results with
    /// this method rather than bit-exact equality.
    pub fn approx_same_data(&self, other: &DataFrame, rel_tol: f64) -> bool {
        if self.shape() != other.shape()
            || self.row_labels != other.row_labels
            || self.col_labels != other.col_labels
        {
            return false;
        }
        fn cell_close(a: &Cell, b: &Cell, rel_tol: f64) -> bool {
            match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    (x - y).abs() <= rel_tol * scale
                }
                _ => a == b,
            }
        }
        self.columns.iter().zip(other.columns.iter()).all(|(a, b)| {
            a.cells()
                .iter()
                .zip(b.cells())
                .all(|(x, y)| cell_close(x, y, rel_tol))
        })
    }

    /// Render the paper's tabular view: the first and last `peek` rows with labels,
    /// plus the (known) schema line. This is the "display output containing a prefix or
    /// suffix of rows" of §6.1.
    pub fn display_with(&self, peek: usize) -> String {
        let mut out = String::new();
        let (m, n) = self.shape();
        out.push_str(&format!("shape: {m} x {n}\n"));
        let header: Vec<String> = std::iter::once(String::new())
            .chain(self.col_labels.display_strings())
            .collect();
        out.push_str(&header.join("\t"));
        out.push('\n');
        let schema_line: Vec<String> = std::iter::once("dtype".to_string())
            .chain(self.columns.iter().map(|c| {
                c.known_domain()
                    .map(|d| d.name().to_string())
                    .unwrap_or_else(|| "?".to_string())
            }))
            .collect();
        out.push_str(&schema_line.join("\t"));
        out.push('\n');
        let write_row = |i: usize, out: &mut String| {
            let mut parts = vec![self
                .row_labels
                .get(i)
                .map(Cell::to_string)
                .unwrap_or_default()];
            for column in &self.columns {
                parts.push(column.cells()[i].to_string());
            }
            out.push_str(&parts.join("\t"));
            out.push('\n');
        };
        if m <= peek * 2 {
            for i in 0..m {
                write_row(i, &mut out);
            }
        } else {
            for i in 0..peek {
                write_row(i, &mut out);
            }
            out.push_str("...\n");
            for i in (m - peek)..m {
                write_row(i, &mut out);
            }
        }
        out
    }
}

impl fmt::Display for DataFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_with(5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::cell::cell;

    fn sample() -> DataFrame {
        DataFrame::from_rows(
            vec!["name", "price", "rating"],
            vec![
                vec![cell("iPhone 11"), cell(699), cell(4.6)],
                vec![cell("iPhone 11 Pro"), cell(999), cell(4.8)],
                vec![cell("iPhone SE"), cell(399), cell(4.5)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_rows_and_columns_agree() {
        let by_rows = sample();
        let by_cols = DataFrame::from_columns(
            vec!["name", "price", "rating"],
            vec![
                vec![cell("iPhone 11"), cell("iPhone 11 Pro"), cell("iPhone SE")],
                vec![cell(699), cell(999), cell(399)],
                vec![cell(4.6), cell(4.8), cell(4.5)],
            ],
        )
        .unwrap();
        assert!(by_rows.same_data(&by_cols));
        assert_eq!(by_rows.shape(), (3, 3));
        assert_eq!(by_rows.n_cells(), 9);
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        assert!(DataFrame::from_rows(vec!["a"], vec![vec![cell(1), cell(2)]]).is_err());
        assert!(DataFrame::from_columns(
            vec!["a", "b"],
            vec![vec![cell(1)], vec![cell(1), cell(2)]]
        )
        .is_err());
        assert!(DataFrame::from_columns(vec!["a"], vec![]).is_err());
    }

    #[test]
    fn positional_and_named_access() {
        let df = sample();
        assert_eq!(df.cell(1, 1).unwrap(), &cell(999));
        assert_eq!(df.col_position(&cell("rating")).unwrap(), 2);
        assert_eq!(
            df.column_by_label(&cell("price")).unwrap().cells()[0],
            cell(699)
        );
        assert!(df.cell(9, 0).is_err());
        assert!(df.col_position(&cell("missing")).is_err());
        assert_eq!(df.row(2).unwrap()[0], cell("iPhone SE"));
    }

    #[test]
    fn point_update_via_set_cell() {
        let mut df = sample();
        df.set_cell(0, 1, cell(650)).unwrap();
        assert_eq!(df.cell(0, 1).unwrap(), &cell(650));
        assert!(df.set_cell(0, 9, cell(1)).is_err());
        assert!(df.set_cell(9, 0, cell(1)).is_err());
    }

    #[test]
    fn default_row_labels_are_positional() {
        let df = sample();
        assert_eq!(df.row_labels().as_slice(), &[cell(0), cell(1), cell(2)]);
        let relabelled = df.with_row_labels(vec!["a", "b", "c"]).unwrap();
        assert_eq!(relabelled.row_position(&cell("b")).unwrap(), 1);
        assert!(relabelled.clone().with_row_labels(vec!["x"]).is_err());
    }

    #[test]
    fn schema_is_lazy_then_induced() {
        let mut df = sample();
        assert_eq!(df.schema(), vec![None, None, None]);
        let resolved = df.resolve_schema();
        assert_eq!(resolved, vec![Domain::Str, Domain::Int, Domain::Float]);
        assert_eq!(
            df.schema(),
            vec![Some(Domain::Str), Some(Domain::Int), Some(Domain::Float)]
        );
    }

    #[test]
    fn raw_string_columns_parse_in_place() {
        let mut df = DataFrame::from_columns(
            vec!["price"],
            vec![vec![cell("699"), cell("999"), Cell::Null]],
        )
        .unwrap();
        let domains = df.parse_all();
        assert_eq!(domains, vec![Domain::Int]);
        assert_eq!(df.cell(0, 0).unwrap(), &cell(699));
        assert_eq!(df.cell(2, 0).unwrap(), &Cell::Null);
    }

    #[test]
    fn declared_schema_skips_induction() {
        let mut df = sample();
        df.declare_schema(&[Domain::Str, Domain::Float, Domain::Float])
            .unwrap();
        assert_eq!(df.schema()[1], Some(Domain::Float));
        assert!(df.declare_schema(&[Domain::Int]).is_err());
    }

    #[test]
    fn homogeneous_and_matrix_classification() {
        let numeric = DataFrame::from_rows(
            vec!["a", "b"],
            vec![vec![cell(1), cell(2)], vec![cell(3), cell(4)]],
        )
        .unwrap();
        assert!(numeric.is_homogeneous());
        assert!(numeric.is_matrix());
        let mixed = sample();
        assert!(!mixed.is_homogeneous());
        assert!(!mixed.is_matrix());
        assert!(DataFrame::empty().is_homogeneous());
        assert!(!DataFrame::empty().is_matrix());
    }

    #[test]
    fn head_tail_and_slice_preserve_labels() {
        let df = sample().with_row_labels(vec!["r0", "r1", "r2"]).unwrap();
        let head = df.head(2);
        assert_eq!(head.shape(), (2, 3));
        assert_eq!(head.row_labels().as_slice(), &[cell("r0"), cell("r1")]);
        let tail = df.tail(1);
        assert_eq!(tail.row_labels().as_slice(), &[cell("r2")]);
        let slice = df.slice_rows(1, 99);
        assert_eq!(slice.shape(), (2, 3));
        assert_eq!(df.head(99).shape(), (3, 3));
    }

    #[test]
    fn take_rows_and_columns_reorder() {
        let df = sample();
        let picked = df.take_rows(&[2, 0]).unwrap();
        assert_eq!(picked.cell(0, 0).unwrap(), &cell("iPhone SE"));
        assert_eq!(picked.row_labels().as_slice(), &[cell(2), cell(0)]);
        let cols = df.take_columns(&[1]).unwrap();
        assert_eq!(cols.shape(), (3, 1));
        assert_eq!(cols.col_labels().as_slice(), &[cell("price")]);
        assert!(df.take_rows(&[7]).is_err());
        assert!(df.take_columns(&[7]).is_err());
    }

    #[test]
    fn push_column_grows_the_frame() {
        let mut df = sample();
        df.push_column(cell("stock"), Column::new(vec![cell(1), cell(0), cell(3)]))
            .unwrap();
        assert_eq!(df.shape(), (3, 4));
        assert!(df
            .push_column(cell("bad"), Column::new(vec![cell(1)]))
            .is_err());
        let mut empty = DataFrame::empty();
        empty
            .push_column(cell("only"), Column::new(vec![cell(1), cell(2)]))
            .unwrap();
        assert_eq!(empty.shape(), (2, 1));
    }

    #[test]
    fn display_shows_prefix_and_suffix() {
        let df =
            DataFrame::from_columns(vec!["v"], vec![(0..20).map(|i| cell(i as i64)).collect()])
                .unwrap();
        let view = df.display_with(2);
        assert!(view.contains("shape: 20 x 1"));
        assert!(view.contains("...\n"));
        assert!(view.contains("dtype"));
        let small = sample().to_string();
        assert!(small.contains("iPhone SE"));
    }

    #[test]
    fn same_data_ignores_schema_cache() {
        let mut a = sample();
        let b = sample();
        a.resolve_schema();
        assert!(a.same_data(&b));
        assert_ne!(a, b); // schema slots differ, PartialEq notices
        let c = sample().with_row_labels(vec!["x", "y", "z"]).unwrap();
        assert!(!a.same_data(&c));
    }

    #[test]
    fn approx_same_data_tolerates_float_reassociation() {
        let a =
            DataFrame::from_rows(vec!["v"], vec![vec![cell(0.1 + 0.2)], vec![cell(1.0)]]).unwrap();
        let b = DataFrame::from_rows(vec!["v"], vec![vec![cell(0.3)], vec![cell(1.0)]]).unwrap();
        assert!(!a.same_data(&b));
        assert!(a.approx_same_data(&b, 1e-12));
        let c = DataFrame::from_rows(vec!["v"], vec![vec![cell(0.4)], vec![cell(1.0)]]).unwrap();
        assert!(!a.approx_same_data(&c, 1e-12));
        let d = DataFrame::from_rows(vec!["w"], vec![vec![cell(0.3)], vec![cell(1.0)]]).unwrap();
        assert!(!b.approx_same_data(&d, 1e-12));
    }

    #[test]
    fn column_raw_ingest_and_counting() {
        let col = Column::from_raw_strings(vec!["1".into(), "".into(), "3".into()]);
        assert_eq!(col.count_non_null(), 2);
        assert_eq!(col.peek_domain(), Domain::Int);
        assert!(col.approx_size_bytes() > 0);
    }
}
