//! The band-exchange worker process for the process-parallel executor backend.
//!
//! `ProcBackend` spawns N of these and ships serialised `BandTask`s plus their
//! input bands over stdin, framed as checksummed spill v4 parts; results return
//! over stdout in the same framing. The whole protocol (and its failure model)
//! lives in [`df_engine::backend::worker_main`] — this binary is only the
//! process entry point around it.

fn main() {
    std::process::exit(df_engine::backend::worker_main());
}
