//! # scalable-dataframes
//!
//! Umbrella crate for the `rustframe` workspace, a from-scratch Rust reproduction of
//! *Towards Scalable Dataframe Systems* (Petersohn et al., VLDB 2020).
//!
//! The workspace is organised around the paper's "narrow waist" design:
//!
//! * [`types`] — the domain set `Dom`, cell values, parsing functions and the schema
//!   induction function `S` (paper §4.2).
//! * [`core`] — the formal dataframe data model and the 14-operator kernel algebra
//!   (paper §4.2–4.3, Table 1), plus a reference executor.
//! * [`baseline`] — a deliberately pandas-like engine: eager, single-threaded,
//!   row-oriented, physical transpose (the paper's comparison system).
//! * [`engine`] — the MODIN-like scalable engine: partitioned (row/column/block),
//!   parallel, metadata-only transpose, lazy/opportunistic evaluation (paper §3, §5–6).
//! * [`pandas`] — a pandas-style user API whose methods are rewritten into algebra
//!   expressions and executed on either engine (paper §3.3, Table 2).
//! * [`storage`] — CSV ingest/egress (serial and chunk-parallel) and the
//!   spill-to-disk partition store.
//! * [`service`] — the in-process multi-tenant query service: one shared engine
//!   and spill budget serving many tenant sessions behind admission control,
//!   tenant-fair scheduling and a cross-session single-flight result cache.
//! * [`workloads`] — synthetic substitutes for the paper's datasets (NYC taxi trips,
//!   the Jupyter notebook corpus, the sales pivot table).
//!
//! ## Quickstart
//!
//! ```
//! use scalable_dataframes::prelude::*;
//!
//! // Build a session backed by the scalable (Modin-like) engine.
//! let session = Session::modin();
//! let df = PandasFrame::from_rows(
//!     &session,
//!     vec!["product", "price", "rating"],
//!     vec![
//!         vec![cell("iPhone 11"), cell(699), cell(4.6)],
//!         vec![cell("iPhone 11 Pro"), cell(999), cell(4.8)],
//!     ],
//! )
//! .unwrap();
//! let expensive = df.filter_gt("price", 700.0).unwrap();
//! assert_eq!(expensive.shape().unwrap(), (1, 3));
//! ```

pub use df_baseline as baseline;
pub use df_core as core;
pub use df_engine as engine;
pub use df_pandas as pandas;
pub use df_service as service;
pub use df_storage as storage;
pub use df_types as types;
pub use df_workloads as workloads;

/// Convenience re-exports covering the most common entry points.
pub mod prelude {
    pub use df_core::algebra::AlgebraExpr;
    pub use df_core::dataframe::DataFrame;
    pub use df_core::engine::{Engine, EngineKind};
    pub use df_core::handle::FrameHandle;
    pub use df_pandas::frame::PandasFrame;
    pub use df_pandas::session::Session;
    pub use df_service::{QueryService, ServiceConfig, TenantSession};
    pub use df_types::cell::{cell, Cell};
    pub use df_types::domain::Domain;
}
